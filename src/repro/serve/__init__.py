"""Batch-serving subsystem: online multi-tenant GEMM scheduling.

This package turns the single-GEMM façades of :mod:`repro.api` into a
serving layer — the ROADMAP's "async/sharded batch serving of many GEMMs",
grown online and heterogeneous — with five separable pieces:

:mod:`repro.serve.job`
    The job model: :class:`Job` (GEMM operands + tenant, priority, deadline
    hint, simulated arrival), :class:`ConvJob` (a convolution layer,
    im2col-lowered at construction so it schedules, prices and batches
    exactly like the GEMM it lowers to, then folds back to an OFMAP) and
    :class:`JobResult` (the bit-exact :class:`repro.api.RunResult` plus
    serving-side latency accounting).
:mod:`repro.serve.queues`
    Per-tenant FIFO queues with weighted-fair virtual-time dequeue, the
    deadline orderings (``ordering="edf"`` / ``"least-laxity"`` serve
    hinted latency-target jobs by deadline or remaining slack ahead of
    the fair rotation), and the admission controller that prices every
    job through the shared estimate cache before it runs.
:mod:`repro.serve.fleet`
    Fleet configuration: :class:`WorkerSpec` groups of identical workers,
    the ``repro serve --fleet`` spec grammar (:func:`parse_fleet_spec`)
    and :func:`build_fleet` — fleets may be heterogeneous (mixed array
    geometries, architectures and scale-out grids).
:mod:`repro.serve.scheduler`
    :class:`AsyncGemmScheduler` — the simulated-clock dispatcher.  Jobs
    are served either one-shot (:meth:`~AsyncGemmScheduler.serve` a whole
    trace) or **streamed online**
    (:meth:`~AsyncGemmScheduler.submit` jobs one at a time as they arrive,
    then :meth:`~AsyncGemmScheduler.drain`): arrivals are admitted, queued
    and dispatched as the simulated clock reaches them, batching windows
    close on a cycle deadline, and on heterogeneous fleets each batch is
    placed on the worker class that finishes it soonest, priced through
    the estimate cache.
:mod:`repro.serve.report`
    :class:`ServeReport` — per-tenant p50/p95 latency and throughput,
    worker and worker-class utilization, batching, fleet description and
    cache statistics, JSON-serializable for the ``repro serve --json``
    CLI.
:mod:`repro.serve.faults`
    The deterministic chaos layer: :class:`FaultPlan` /
    :class:`FaultInjector` script per-worker failures (permanent death,
    transient outage, slowdown) on the simulated clock.  The scheduler
    retries/requeues interrupted work (bounded by ``max_retries``),
    enforces deadlines when asked (``enforce_deadlines=True`` expires
    jobs whose laxity ran out), supports mid-stream
    :meth:`~AsyncGemmScheduler.cancel`, sheds best-effort tenants
    before latency-target tenants under overload (``shed_cycles``), and
    preempts queued-but-unstarted work for tight latency-target arrivals
    when ``max_preemptions > 0`` (displaced jobs requeue with
    ``attempts`` unchanged — preemption is not a retry).

Traces to replay come from :mod:`repro.workloads.serving` (pass
``conv_fraction > 0`` to :func:`repro.workloads.serving.synthetic_trace`
for a mixed GEMM+conv trace).

Quickstart — two workers serving four GEMM jobs, each result bit-exact
against a direct ``run_gemm`` call:

>>> import numpy as np
>>> from repro import AxonAccelerator, ArrayConfig
>>> from repro.serve import AsyncGemmScheduler, Job
>>> fleet = [AxonAccelerator(ArrayConfig(8, 8)) for _ in range(2)]
>>> jobs = [Job(job_id=f"j{i}", tenant=f"t{i % 2}", a=np.eye(8), b=np.eye(8))
...         for i in range(4)]
>>> report, results = AsyncGemmScheduler(fleet, max_batch=2).serve(jobs)
>>> report.jobs_completed
4
>>> direct = fleet[0].run_gemm(np.eye(8), np.eye(8))
>>> all(r.result.cycles == direct.cycles for r in results)
True

The same trace streams online — ``submit()`` one job at a time (in
arrival order) and ``drain()``; the schedule and every result are
bit-identical to the one-shot call:

>>> streaming = AsyncGemmScheduler(fleet, max_batch=2)
>>> for job in jobs:
...     streaming.submit(job)
>>> stream_report, stream_results = streaming.drain()
>>> stream_report.makespan_cycles == report.makespan_cycles
True
>>> all(np.array_equal(a.result.output, b.result.output)
...     for a, b in zip(stream_results, results))
True

Conv layers serve the same way — wrap the tensors in a :class:`ConvJob`
and the scheduler prices, batches and executes the im2col-lowered GEMM,
folding the result back to an OFMAP:

>>> rng = np.random.default_rng(0)
>>> job = ConvJob(job_id="c0", tenant="t0",
...               ifmap=rng.standard_normal((3, 8, 8)),
...               filters=rng.standard_normal((4, 3, 3, 3)), padding=1)
>>> _, (served,) = AsyncGemmScheduler(fleet[:1]).serve([job])
>>> served.result.output.shape
(4, 8, 8)
"""

from __future__ import annotations

from repro.serve.faults import (
    FAULT_KINDS,
    FAULT_PERMANENT,
    FAULT_SLOWDOWN,
    FAULT_TRANSIENT,
    FailureEvent,
    FaultInjector,
    FaultPlan,
    WorkerFault,
    parse_fault_spec,
    random_fault_plan,
)
from repro.serve.fleet import (
    FLEET_ARCHS,
    FleetClasses,
    WorkerSpec,
    build_fleet,
    group_worker_classes,
    parse_fleet_spec,
    worker_signature,
)
from repro.serve.job import (
    JOB_STATUSES,
    SLO_BEST_EFFORT,
    SLO_CLASSES,
    SLO_LATENCY_TARGET,
    STATUS_CANCELLED,
    STATUS_COMPLETED,
    STATUS_EXPIRED,
    STATUS_FAILED,
    STATUS_REJECTED,
    STATUS_SHED,
    AnyJob,
    ConvJob,
    Job,
    JobResult,
)
from repro.serve.queues import (
    ADMISSION_POLICIES,
    ORDERING_EDF,
    ORDERING_FAIR,
    ORDERING_LEAST_LAXITY,
    ORDERINGS,
    POLICY_DEPRIORITIZE,
    POLICY_REJECT,
    AdmissionController,
    AdmissionDecision,
    QueuedJob,
    WeightedFairQueue,
)
from repro.serve.report import (
    CacheClassStats,
    ServeReport,
    SloClassStats,
    TenantServeStats,
    WorkerClassStats,
    WorkerStats,
    compile_serve_report,
    format_serve_report,
)
from repro.serve.scheduler import (
    DEFAULT_CLOCK_HZ,
    PLACEMENT_PRICED,
    PLACEMENT_RANDOM,
    PLACEMENTS,
    AsyncGemmScheduler,
    planned_gemm_cycles,
    run_batch,
    serial_baseline,
    stacked_matmul_is_bitexact,
)

__all__ = [
    "Job",
    "ConvJob",
    "AnyJob",
    "JobResult",
    "JOB_STATUSES",
    "STATUS_COMPLETED",
    "STATUS_REJECTED",
    "STATUS_FAILED",
    "STATUS_CANCELLED",
    "STATUS_EXPIRED",
    "STATUS_SHED",
    "SLO_CLASSES",
    "SLO_LATENCY_TARGET",
    "SLO_BEST_EFFORT",
    "FAULT_KINDS",
    "FAULT_PERMANENT",
    "FAULT_SLOWDOWN",
    "FAULT_TRANSIENT",
    "FailureEvent",
    "FaultInjector",
    "FaultPlan",
    "WorkerFault",
    "parse_fault_spec",
    "random_fault_plan",
    "ADMISSION_POLICIES",
    "POLICY_DEPRIORITIZE",
    "POLICY_REJECT",
    "ORDERINGS",
    "ORDERING_FAIR",
    "ORDERING_EDF",
    "ORDERING_LEAST_LAXITY",
    "AdmissionController",
    "AdmissionDecision",
    "QueuedJob",
    "WeightedFairQueue",
    "FLEET_ARCHS",
    "FleetClasses",
    "WorkerSpec",
    "build_fleet",
    "group_worker_classes",
    "parse_fleet_spec",
    "worker_signature",
    "CacheClassStats",
    "ServeReport",
    "SloClassStats",
    "TenantServeStats",
    "WorkerClassStats",
    "WorkerStats",
    "compile_serve_report",
    "format_serve_report",
    "DEFAULT_CLOCK_HZ",
    "PLACEMENT_PRICED",
    "PLACEMENT_RANDOM",
    "PLACEMENTS",
    "AsyncGemmScheduler",
    "planned_gemm_cycles",
    "run_batch",
    "serial_baseline",
    "stacked_matmul_is_bitexact",
]

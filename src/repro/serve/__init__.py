"""Batch-serving subsystem: async multi-tenant GEMM scheduling.

This package turns the single-GEMM façades of :mod:`repro.api` into a
serving layer — the ROADMAP's "async/sharded batch serving of many GEMMs"
— with four separable pieces:

:mod:`repro.serve.job`
    The job model: :class:`Job` (operands + tenant, priority, deadline
    hint, simulated arrival) and :class:`JobResult` (the bit-exact
    :class:`repro.api.RunResult` plus serving-side latency accounting).
:mod:`repro.serve.queues`
    Per-tenant FIFO queues with weighted-fair virtual-time dequeue, and
    the admission controller that prices every job through the shared
    estimate cache before it runs.
:mod:`repro.serve.scheduler`
    :class:`AsyncGemmScheduler` — the asyncio + thread-pool dispatcher
    that packs same-shape jobs into stacked batches across a fleet of
    accelerator workers on a deterministic simulated clock.
:mod:`repro.serve.report`
    :class:`ServeReport` — per-tenant p50/p95 latency and throughput,
    worker utilization, batching and cache statistics, JSON-serializable
    for the ``repro serve --json`` CLI.

Traces to replay come from :mod:`repro.workloads.serving`.

Quickstart::

    from repro import AxonAccelerator, ArrayConfig
    from repro.serve import AsyncGemmScheduler
    from repro.workloads import synthetic_trace

    fleet = [AxonAccelerator(ArrayConfig(32, 32)) for _ in range(4)]
    jobs = synthetic_trace(fleet[0], tenants=4, jobs_per_tenant=8)
    report, results = AsyncGemmScheduler(fleet).serve(jobs)
    print(report.jobs_per_second, report.cache_hit_rate)
"""

from __future__ import annotations

from repro.serve.job import STATUS_COMPLETED, STATUS_REJECTED, Job, JobResult
from repro.serve.queues import (
    ADMISSION_POLICIES,
    POLICY_DEPRIORITIZE,
    POLICY_REJECT,
    AdmissionController,
    AdmissionDecision,
    QueuedJob,
    WeightedFairQueue,
)
from repro.serve.report import (
    ServeReport,
    TenantServeStats,
    WorkerStats,
    compile_serve_report,
    format_serve_report,
)
from repro.serve.scheduler import (
    DEFAULT_CLOCK_HZ,
    AsyncGemmScheduler,
    planned_gemm_cycles,
    run_batch,
    serial_baseline,
    stacked_matmul_is_bitexact,
)

__all__ = [
    "Job",
    "JobResult",
    "STATUS_COMPLETED",
    "STATUS_REJECTED",
    "ADMISSION_POLICIES",
    "POLICY_DEPRIORITIZE",
    "POLICY_REJECT",
    "AdmissionController",
    "AdmissionDecision",
    "QueuedJob",
    "WeightedFairQueue",
    "ServeReport",
    "TenantServeStats",
    "WorkerStats",
    "compile_serve_report",
    "format_serve_report",
    "DEFAULT_CLOCK_HZ",
    "AsyncGemmScheduler",
    "planned_gemm_cycles",
    "run_batch",
    "serial_baseline",
    "stacked_matmul_is_bitexact",
]

"""Batch-serving subsystem: async multi-tenant GEMM scheduling.

This package turns the single-GEMM façades of :mod:`repro.api` into a
serving layer — the ROADMAP's "async/sharded batch serving of many GEMMs"
— with four separable pieces:

:mod:`repro.serve.job`
    The job model: :class:`Job` (GEMM operands + tenant, priority, deadline
    hint, simulated arrival), :class:`ConvJob` (a convolution layer,
    im2col-lowered at construction so it schedules, prices and batches
    exactly like the GEMM it lowers to, then folds back to an OFMAP) and
    :class:`JobResult` (the bit-exact :class:`repro.api.RunResult` plus
    serving-side latency accounting).
:mod:`repro.serve.queues`
    Per-tenant FIFO queues with weighted-fair virtual-time dequeue, and
    the admission controller that prices every job through the shared
    estimate cache before it runs.
:mod:`repro.serve.scheduler`
    :class:`AsyncGemmScheduler` — the asyncio + thread-pool dispatcher
    that packs same-shape jobs into stacked batches across a fleet of
    accelerator workers on a deterministic simulated clock.
:mod:`repro.serve.report`
    :class:`ServeReport` — per-tenant p50/p95 latency and throughput,
    worker utilization, batching and cache statistics, JSON-serializable
    for the ``repro serve --json`` CLI.

Traces to replay come from :mod:`repro.workloads.serving` (pass
``conv_fraction > 0`` to :func:`repro.workloads.serving.synthetic_trace`
for a mixed GEMM+conv trace).

Quickstart — two workers serving four GEMM jobs, each result bit-exact
against a direct ``run_gemm`` call:

>>> import numpy as np
>>> from repro import AxonAccelerator, ArrayConfig
>>> from repro.serve import AsyncGemmScheduler, Job
>>> fleet = [AxonAccelerator(ArrayConfig(8, 8)) for _ in range(2)]
>>> jobs = [Job(job_id=f"j{i}", tenant=f"t{i % 2}", a=np.eye(8), b=np.eye(8))
...         for i in range(4)]
>>> report, results = AsyncGemmScheduler(fleet, max_batch=2).serve(jobs)
>>> report.jobs_completed
4
>>> direct = fleet[0].run_gemm(np.eye(8), np.eye(8))
>>> all(r.result.cycles == direct.cycles for r in results)
True

Conv layers serve the same way — wrap the tensors in a :class:`ConvJob`
and the scheduler prices, batches and executes the im2col-lowered GEMM,
folding the result back to an OFMAP:

>>> rng = np.random.default_rng(0)
>>> job = ConvJob(job_id="c0", tenant="t0",
...               ifmap=rng.standard_normal((3, 8, 8)),
...               filters=rng.standard_normal((4, 3, 3, 3)), padding=1)
>>> _, (served,) = AsyncGemmScheduler(fleet[:1]).serve([job])
>>> served.result.output.shape
(4, 8, 8)
"""

from __future__ import annotations

from repro.serve.job import (
    STATUS_COMPLETED,
    STATUS_REJECTED,
    AnyJob,
    ConvJob,
    Job,
    JobResult,
)
from repro.serve.queues import (
    ADMISSION_POLICIES,
    POLICY_DEPRIORITIZE,
    POLICY_REJECT,
    AdmissionController,
    AdmissionDecision,
    QueuedJob,
    WeightedFairQueue,
)
from repro.serve.report import (
    ServeReport,
    TenantServeStats,
    WorkerStats,
    compile_serve_report,
    format_serve_report,
)
from repro.serve.scheduler import (
    DEFAULT_CLOCK_HZ,
    AsyncGemmScheduler,
    planned_gemm_cycles,
    run_batch,
    serial_baseline,
    stacked_matmul_is_bitexact,
)

__all__ = [
    "Job",
    "ConvJob",
    "AnyJob",
    "JobResult",
    "STATUS_COMPLETED",
    "STATUS_REJECTED",
    "ADMISSION_POLICIES",
    "POLICY_DEPRIORITIZE",
    "POLICY_REJECT",
    "AdmissionController",
    "AdmissionDecision",
    "QueuedJob",
    "WeightedFairQueue",
    "ServeReport",
    "TenantServeStats",
    "WorkerStats",
    "compile_serve_report",
    "format_serve_report",
    "DEFAULT_CLOCK_HZ",
    "AsyncGemmScheduler",
    "planned_gemm_cycles",
    "run_batch",
    "serial_baseline",
    "stacked_matmul_is_bitexact",
]

"""Async multi-tenant GEMM dispatcher over a simulated-clock fleet.

:class:`AsyncGemmScheduler` packs :class:`repro.serve.job.Job` streams onto
a homogeneous fleet of accelerator instances (:class:`SystolicAccelerator`
or :class:`AxonAccelerator`, single arrays or ``scale_out=(P_R, P_C)``
grids).  Convolution jobs (:class:`repro.serve.job.ConvJob`) ride the same
machinery: they arrive already im2col-lowered, are priced and batched by
their lowered GEMM shape, and fold their output back into an OFMAP at
result-assembly time.  Two clocks are involved, deliberately decoupled:

* **Simulated clock** — drives all scheduling semantics.  Job arrivals,
  weighted-fair dequeue, batch formation, worker occupancy, per-tenant
  latency and the run's makespan are all computed in accelerator cycles
  from the closed-form tile accounting
  (:func:`repro.engine.batched.gemm_cycle_accounting`), which is exactly
  what ``run_gemm`` would report.  The schedule is therefore deterministic:
  it depends only on the trace, the fleet and the policies — never on host
  thread timing.
* **Host wall clock** — the numerics (the actual matrices) execute through
  an ``asyncio`` dispatch loop over a thread-pool executor, one submission
  per scheduled batch, so independent batches overlap on the host.
  Same-shape batches run as one stacked ``np.matmul`` with the tile-group
  accounting computed once for the whole batch (verified at import against
  per-slice BLAS — the outputs stay bit-exact with direct ``run_gemm``;
  see :func:`stacked_matmul_is_bitexact`), which is where the serial
  per-job Python overhead is amortized away.

Every completed :class:`JobResult` carries a :class:`repro.api.RunResult`
that is bit-exact — output matrix and every counter — with what a direct
``accelerator.run_gemm(job.a, job.b)`` call returns; the scheduler asserts
the planned cycles against the executed cycles and refuses to mis-report.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.api import RunResult, _validated_utilization
from repro.engine.batched import gemm_cycle_accounting
from repro.engine.cache import estimate_cache_info
from repro.engine.scaleout import iter_partition_share_shapes
from repro.serve.job import (
    STATUS_COMPLETED,
    STATUS_REJECTED,
    AnyJob,
    JobResult,
)
from repro.serve.queues import (
    POLICY_DEPRIORITIZE,
    AdmissionController,
    QueuedJob,
    WeightedFairQueue,
)
from repro.serve.report import ServeReport, WorkerStats, compile_serve_report

#: Default simulated clock for cycle -> second conversions (1 GHz).
DEFAULT_CLOCK_HZ = 1e9

_STACKED_PROBE: bool | None = None


def stacked_matmul_is_bitexact() -> bool:
    """Whether ``np.matmul`` over a stack bit-matches per-slice 2-D matmuls.

    NumPy dispatches stacked float64 matmuls to the same BLAS GEMM per
    slice, so the answer is expected to be True — but the batching fast
    path *requires* it (JobResults must be bit-exact against direct
    ``run_gemm``), so it is probed once per process instead of assumed.
    On a False probe the scheduler silently falls back to per-job
    execution; nothing is ever approximate.
    """
    global _STACKED_PROBE
    if _STACKED_PROBE is None:
        rng = np.random.default_rng(0xA40)
        stack_a = rng.standard_normal((3, 17, 23))
        stack_b = rng.standard_normal((3, 23, 11))
        stacked = stack_a @ stack_b
        _STACKED_PROBE = all(
            np.array_equal(stacked[i], stack_a[i] @ stack_b[i]) for i in range(3)
        )
    return _STACKED_PROBE


def planned_gemm_cycles(accelerator, m: int, k: int, n: int) -> int:
    """The exact cycles ``accelerator.run_gemm`` will report for this shape.

    Unlike :meth:`estimate_gemm_cycles` (the Eq. 2/3 analytical pricing
    model, which pads ragged tiles), this is the tile-exact accounting the
    functional engines produce, so planned batch finish times match the
    executed :class:`RunResult` cycles exactly.  For scale-out fleets the
    Eq. 3 makespan is the maximum over the per-array share accountings.
    """
    rows, cols = accelerator.config.rows, accelerator.config.cols
    dataflow, axon = accelerator.dataflow, accelerator.axon
    p_r, p_c = accelerator.scale_out

    def share_cycles(sm: int, sk: int, sn: int) -> int:
        return gemm_cycle_accounting(
            sm, sk, sn, rows, cols, dataflow=dataflow, axon=axon
        ).total_cycles

    if (p_r, p_c) == (1, 1):
        return share_cycles(m, k, n)
    # Each non-empty Eq. 3 share runs as an independent scale-up GEMM; the
    # makespan is the slowest share.
    return max(
        share_cycles(*share)
        for share in iter_partition_share_shapes(m, k, n, dataflow, p_r, p_c)
    )


def _batch_eligible(accelerator, jobs: Sequence[AnyJob]) -> bool:
    """Whether the stacked-matmul fast path may run this batch."""
    if len(jobs) < 2 or not stacked_matmul_is_bitexact():
        return False
    if accelerator.engine != "wavefront" or accelerator.zero_gating:
        return False
    if accelerator.scale_out != (1, 1):
        return False
    shape = jobs[0].shape
    return all(job.shape == shape for job in jobs)


def run_batch(accelerator, jobs: Sequence[AnyJob]) -> list[RunResult]:
    """Execute one batch's numerics, bit-exact with per-job ``run_gemm``.

    Same-shape batches on a plain wavefront worker take the stacked
    fast path: one ``(B, M, K) @ (B, K, N)`` matmul plus a single
    tile-group accounting shared by every job (with zero gating off, the
    accounting is a pure function of the shape).  Everything else — cycle
    or exact engines, zero gating, scale-out grids, mixed shapes — falls
    back to a per-job ``run_gemm`` loop, which is trivially bit-exact.
    """
    if not _batch_eligible(accelerator, jobs):
        return [accelerator.run_gemm(job.a, job.b, name=job.name) for job in jobs]

    m, k, n = jobs[0].shape
    accounting = gemm_cycle_accounting(
        m,
        k,
        n,
        accelerator.config.rows,
        accelerator.config.cols,
        dataflow=accelerator.dataflow,
        axon=accelerator.axon,
    )
    outputs = np.stack([job.a for job in jobs]) @ np.stack([job.b for job in jobs])
    macs = m * k * n
    utilization = _validated_utilization(
        macs,
        accelerator.config.num_pes,
        accounting.total_cycles,
        f"run_batch({jobs[0].name!r})",
    )
    return [
        RunResult(
            name=job.name,
            cycles=accounting.total_cycles,
            macs=macs,
            utilization=utilization,
            output=outputs[index],
            active_pe_cycles=macs,
            engine=accelerator.engine,
            performed_macs=macs,
            gated_macs=0,
            scale_out=(1, 1),
        )
        for index, job in enumerate(jobs)
    ]


@dataclass(frozen=True)
class _ScheduledBatch:
    """One planned dispatch: which jobs run where, and when (simulated)."""

    batch_id: int
    worker_id: int
    start_cycle: int
    entries: tuple[QueuedJob, ...]
    job_cycles: tuple[int, ...]

    @property
    def total_cycles(self) -> int:
        return sum(self.job_cycles)

    @property
    def finish_cycle(self) -> int:
        return self.start_cycle + self.total_cycles


@dataclass
class _WorkerLedger:
    """Mutable per-worker occupancy while the schedule is being built."""

    worker_id: int
    jobs: int = 0
    batches: int = 0
    busy_cycles: int = 0


class AsyncGemmScheduler:
    """Schedules many concurrent GEMM jobs across an accelerator fleet.

    Parameters
    ----------
    fleet:
        One or more accelerator instances.  The fleet must be homogeneous
        (same array shape, dataflow, orchestration, engine and scale-out
        grid) so any job can run on any worker with identical results —
        which is what makes the simulated schedule meaningful.
    max_batch:
        Upper bound on jobs per dispatched batch (same-shape jobs are
        packed together; 1 disables batching).
    weights:
        Per-tenant fair-share weights (default 1.0 each).
    budgets:
        Per-tenant priced-cycle budgets for the admission controller
        (absent tenants are unmetered).
    admission_policy:
        ``"deprioritize"`` (default) or ``"reject"`` for over-budget jobs.
    clock_hz:
        Simulated clock frequency used to convert cycles to seconds in the
        report.
    """

    def __init__(
        self,
        fleet: Sequence,
        *,
        max_batch: int = 8,
        weights: Mapping[str, float] | None = None,
        budgets: Mapping[str, int] | None = None,
        admission_policy: str = POLICY_DEPRIORITIZE,
        clock_hz: float = DEFAULT_CLOCK_HZ,
    ):
        fleet = list(fleet)
        if not fleet:
            raise ValueError("fleet must contain at least one accelerator")
        signature = self._worker_signature(fleet[0])
        for worker in fleet[1:]:
            if self._worker_signature(worker) != signature:
                raise ValueError(
                    "fleet must be homogeneous (same array shape, dataflow, "
                    "orchestration, engine and scale-out grid on every worker)"
                )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {clock_hz}")
        self.fleet = fleet
        self.max_batch = max_batch
        self.weights = dict(weights or {})
        self.budgets = dict(budgets or {})
        self.admission_policy = admission_policy
        self.clock_hz = clock_hz
        self._planned_cycles_memo: dict[tuple[int, int, int], int] = {}

    @staticmethod
    def _worker_signature(accelerator) -> tuple:
        return (
            accelerator.config.rows,
            accelerator.config.cols,
            accelerator.dataflow,
            accelerator.axon,
            accelerator.zero_gating,
            accelerator.engine,
            accelerator.scale_out,
        )

    # -- pricing ----------------------------------------------------------

    def price_job(self, job: AnyJob) -> int:
        """Admission price: the Eq. 2/3 analytical estimate (memoized in
        the shared estimate cache, so steady-state traffic is all hits)."""
        return self.fleet[0].estimate_gemm_cycles(job.m, job.k, job.n)

    def _planned_cycles(self, job: AnyJob) -> int:
        shape = job.shape
        cycles = self._planned_cycles_memo.get(shape)
        if cycles is None:
            cycles = planned_gemm_cycles(self.fleet[0], *shape)
            self._planned_cycles_memo[shape] = cycles
        return cycles

    # -- planning (simulated clock) ---------------------------------------

    def _plan(
        self, jobs: Sequence[AnyJob]
    ) -> tuple[list[_ScheduledBatch], list[JobResult], dict[int, _WorkerLedger]]:
        """Build the deterministic simulated-clock schedule.

        Event loop over (worker-free, job-arrival) instants: the earliest
        free worker pulls the weighted-fair head-of-line job — plus up to
        ``max_batch - 1`` queued same-shape mates — the moment both it and
        work are available.  Returns the planned batches, the rejected
        jobs' results, and per-worker occupancy ledgers.
        """
        arrivals = sorted(jobs, key=lambda job: (job.arrival_cycle, job.job_id))
        seen: set[str] = set()
        for job in arrivals:
            if job.job_id in seen:
                raise ValueError(f"duplicate job_id {job.job_id!r} in trace")
            seen.add(job.job_id)

        admission = AdmissionController(
            self.price_job, self.budgets, self.admission_policy
        )
        queue = WeightedFairQueue(self.weights)
        ledgers = {wid: _WorkerLedger(wid) for wid in range(len(self.fleet))}
        heap: list[tuple[int, int]] = [(0, wid) for wid in range(len(self.fleet))]
        heapq.heapify(heap)

        rejected: list[JobResult] = []
        batches: list[_ScheduledBatch] = []
        index = 0

        def admit_through(cycle: int) -> int:
            nonlocal index
            while index < len(arrivals) and arrivals[index].arrival_cycle <= cycle:
                job = arrivals[index]
                index += 1
                decision = admission.admit(job)
                if not decision.admitted:
                    rejected.append(
                        JobResult(
                            job_id=job.job_id,
                            tenant=job.tenant,
                            name=job.name,
                            status=STATUS_REJECTED,
                            priced_cycles=decision.priced_cycles,
                            arrival_cycle=job.arrival_cycle,
                            deadline_hint_cycles=job.deadline_hint_cycles,
                        )
                    )
                    continue
                queue.push(
                    QueuedJob(job, decision.priced_cycles, decision.deprioritized)
                )
            return cycle

        while True:
            free_at, worker_id = heapq.heappop(heap)
            clock = admit_through(free_at)
            if not len(queue):
                if index >= len(arrivals):
                    heapq.heappush(heap, (free_at, worker_id))
                    break
                # The fleet is idle: fast-forward to the next arrival.
                clock = admit_through(arrivals[index].arrival_cycle)
                if not len(queue):  # every arrival at that instant was rejected
                    heapq.heappush(heap, (max(free_at, clock), worker_id))
                    continue
                clock = max(free_at, clock)
            # Adaptive batch bound: a batch occupies this worker for the sum
            # of its jobs' cycles, so hoarding the whole backlog would idle
            # the siblings that free up mid-batch and stretch the makespan.
            # Cap each batch at this worker's fair slice (1/fleet) of the
            # queued work; deep backlogs still batch to max_batch.
            budget = -(-queue.total_priced_cycles() // len(self.fleet))
            entries = tuple(queue.next_batch(self.max_batch, cycle_budget=budget))
            job_cycles = tuple(self._planned_cycles(entry.job) for entry in entries)
            batch = _ScheduledBatch(
                batch_id=len(batches),
                worker_id=worker_id,
                start_cycle=clock,
                entries=entries,
                job_cycles=job_cycles,
            )
            batches.append(batch)
            ledger = ledgers[worker_id]
            ledger.jobs += len(entries)
            ledger.batches += 1
            ledger.busy_cycles += batch.total_cycles
            heapq.heappush(heap, (batch.finish_cycle, worker_id))
        return batches, rejected, ledgers

    # -- execution (host clock) -------------------------------------------

    async def serve_async(self, jobs: Sequence[AnyJob]) -> tuple[ServeReport, list[JobResult]]:
        """Serve a trace: plan on the simulated clock, execute concurrently.

        Returns the aggregate :class:`ServeReport` and one
        :class:`JobResult` per submitted job (rejected jobs included),
        sorted by ``job_id``.
        """
        wall_start = time.perf_counter()
        cache_before = estimate_cache_info()
        batches, rejected, ledgers = self._plan(jobs)

        loop = asyncio.get_running_loop()
        pool_size = max(1, len(self.fleet))
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            futures = [
                loop.run_in_executor(
                    pool,
                    run_batch,
                    self.fleet[batch.worker_id],
                    [entry.job for entry in batch.entries],
                )
                for batch in batches
            ]
            batch_runs = await asyncio.gather(*futures)

        results = list(rejected)
        for batch, runs in zip(batches, batch_runs):
            cursor = batch.start_cycle
            for entry, planned, run in zip(batch.entries, batch.job_cycles, runs):
                if run.cycles != planned:
                    raise RuntimeError(
                        f"scheduler accounting drift on job "
                        f"{entry.job.job_id!r}: planned {planned} cycles but "
                        f"execution reported {run.cycles}"
                    )
                # Job-kind post-processing: conv jobs fold the flat GEMM
                # result into their OFMAP and attach im2col traffic, so the
                # JobResult matches a direct run_conv call bit-for-bit.
                run = entry.job.finalize_result(
                    run, self.fleet[batch.worker_id]
                )
                start = cursor
                cursor += planned
                results.append(
                    JobResult(
                        job_id=entry.job.job_id,
                        tenant=entry.job.tenant,
                        name=entry.job.name,
                        status=STATUS_COMPLETED,
                        priced_cycles=entry.priced_cycles,
                        arrival_cycle=entry.job.arrival_cycle,
                        result=run,
                        start_cycle=start,
                        finish_cycle=cursor,
                        worker_id=batch.worker_id,
                        batch_id=batch.batch_id,
                        batch_size=len(batch.entries),
                        deadline_hint_cycles=entry.job.deadline_hint_cycles,
                        deprioritized=entry.deprioritized,
                    )
                )

        cache_after = estimate_cache_info()
        makespan = max((batch.finish_cycle for batch in batches), default=0)
        worker_stats = [
            WorkerStats(
                worker_id=ledger.worker_id,
                jobs=ledger.jobs,
                batches=ledger.batches,
                busy_cycles=ledger.busy_cycles,
                utilization=ledger.busy_cycles / makespan if makespan else 0.0,
            )
            for ledger in ledgers.values()
        ]
        report = compile_serve_report(
            results,
            workers=worker_stats,
            budgets={tenant: self.budgets.get(tenant) for tenant in
                     {job.tenant for job in jobs}},
            max_batch=self.max_batch,
            clock_hz=self.clock_hz,
            wall_seconds=time.perf_counter() - wall_start,
            cache_hits=cache_after.hits - cache_before.hits,
            cache_misses=cache_after.misses - cache_before.misses,
        )
        results.sort(key=lambda item: item.job_id)
        return report, results

    def serve(self, jobs: Sequence[AnyJob]) -> tuple[ServeReport, list[JobResult]]:
        """Synchronous wrapper around :meth:`serve_async`."""
        return asyncio.run(self.serve_async(jobs))


def serial_baseline(
    fleet_worker, jobs: Sequence[AnyJob], *, clock_hz: float = DEFAULT_CLOCK_HZ
) -> tuple[ServeReport, list[JobResult]]:
    """Naive serial dispatch: one worker, no batching, strict arrival order.

    The reference point the batched async scheduler is benchmarked against
    (``benchmarks/bench_serve_throughput.py``): every job runs alone, in
    arrival order, on a single accelerator.
    """
    scheduler = AsyncGemmScheduler(
        [fleet_worker], max_batch=1, clock_hz=clock_hz
    )
    return scheduler.serve(jobs)

"""Online multi-tenant GEMM dispatcher over a simulated-clock fleet.

:class:`AsyncGemmScheduler` dispatches :class:`repro.serve.job.Job` streams
onto a fleet of accelerator instances (:class:`SystolicAccelerator` or
:class:`AxonAccelerator`, single arrays or ``scale_out=(P_R, P_C)`` grids).
The fleet may be **heterogeneous**: workers of distinct array geometry,
dataflow, engine or scale-out grid form *worker classes* (grouped by
:meth:`repro.api._AcceleratorBase.describe`), and the placement policy
prices every (job-shape, worker-class) pair through the shared estimate
cache to put each batch where it finishes soonest (see
:mod:`repro.serve.fleet` for fleet construction helpers).  Convolution jobs
(:class:`repro.serve.job.ConvJob`) ride the same machinery: they arrive
already im2col-lowered, are priced and batched by their lowered GEMM shape,
and fold their output back into an OFMAP at result-assembly time.

Jobs can be served **one-shot** (hand a whole trace to :meth:`serve`) or
**streamed online**: :meth:`~AsyncGemmScheduler.submit` feeds jobs one at a
time, the planner admits, queues, batches and dispatches them as the
simulated clock reaches each ``arrival_cycle``, and
:meth:`~AsyncGemmScheduler.drain` closes the stream and returns the report.
``serve()`` is literally "submit everything in arrival order, then drain",
so the two paths produce bit-identical schedules and results.  A *batching
window* (``batch_window_cycles``) lets an idle worker hold a young batch
open for same-shape mates that arrive within the window — batches close on
that cycle deadline (or when a full batch is waiting), never by waiting for
the rest of the trace.

Two clocks are involved, deliberately decoupled:

* **Simulated clock** — drives all scheduling semantics.  Job arrivals,
  weighted-fair dequeue, batch formation, batching-window deadlines, worker
  occupancy, per-tenant latency and the run's makespan are all computed in
  accelerator cycles from the closed-form tile accounting
  (:func:`repro.engine.batched.gemm_cycle_accounting`), which is exactly
  what ``run_gemm`` would report on the hosting worker's class.  The
  schedule is therefore deterministic: it depends only on the trace, the
  fleet and the policies — never on host thread timing.
* **Host wall clock** — the numerics (the actual matrices) execute through
  a thread-pool executor, one submission per scheduled batch, so
  independent batches overlap on the host (streamed batches start executing
  the moment their dispatch is final, before ``drain()`` is even called).
  Same-shape batches run as one stacked ``np.matmul`` with the tile-group
  accounting computed once for the whole batch (verified at import against
  per-slice BLAS — the outputs stay bit-exact with direct ``run_gemm``;
  see :func:`stacked_matmul_is_bitexact`), which is where the serial
  per-job Python overhead is amortized away.

Every completed :class:`JobResult` carries a :class:`repro.api.RunResult`
that is bit-exact — output matrix and every counter — with what a direct
``run_gemm(job.a, job.b)`` call on the hosting worker returns; the
scheduler asserts the planned cycles against the executed cycles and
refuses to mis-report.
"""

from __future__ import annotations

import asyncio
import dataclasses
import heapq
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from repro.api import RunResult, _AcceleratorBase, _validated_utilization
from repro.engine.batched import gemm_cycle_accounting
from repro.engine.cache import (
    CacheGroupInfo,
    CacheInfo,
    DiskCacheInfo,
    estimate_cache_disk_info,
    estimate_cache_group_info,
    estimate_cache_info,
    set_estimate_cache_observer,
)
from repro.engine.scaleout import iter_partition_share_shapes
from repro.obs.tracer import Tracer
from repro.serve.faults import FaultInjector, FaultPlan
from repro.serve.fleet import group_worker_classes
from repro.serve.job import (
    SLO_BEST_EFFORT,
    SLO_CLASSES,
    SLO_LATENCY_TARGET,
    STATUS_CANCELLED,
    STATUS_COMPLETED,
    STATUS_EXPIRED,
    STATUS_FAILED,
    STATUS_REJECTED,
    STATUS_SHED,
    AnyJob,
    JobResult,
)
from repro.serve.queues import (
    ORDERING_FAIR,
    ORDERINGS,
    POLICY_DEPRIORITIZE,
    AdmissionController,
    QueuedJob,
    WeightedFairQueue,
)
from repro.serve.report import (
    CacheClassStats,
    ServeReport,
    WorkerStats,
    compile_serve_report,
)

#: Default simulated clock for cycle -> second conversions (1 GHz).
DEFAULT_CLOCK_HZ = 1e9

#: Placement policies for heterogeneous fleets.
PLACEMENT_PRICED = "priced"
PLACEMENT_RANDOM = "random"
PLACEMENTS = (PLACEMENT_PRICED, PLACEMENT_RANDOM)

_STACKED_PROBE: bool | None = None


def _shape_label(shape: tuple[int, int, int]) -> str:
    """Compact ``MxKxN`` label for trace-event payloads."""
    return "x".join(str(dim) for dim in shape)


def stacked_matmul_is_bitexact() -> bool:
    """Whether ``np.matmul`` over a stack bit-matches per-slice 2-D matmuls.

    NumPy dispatches stacked float64 matmuls to the same BLAS GEMM per
    slice, so the answer is expected to be True — but the batching fast
    path *requires* it (JobResults must be bit-exact against direct
    ``run_gemm``), so it is probed once per process instead of assumed.
    On a False probe the scheduler silently falls back to per-job
    execution; nothing is ever approximate.
    """
    global _STACKED_PROBE
    if _STACKED_PROBE is None:
        rng = np.random.default_rng(0xA40)
        stack_a = rng.standard_normal((3, 17, 23))
        stack_b = rng.standard_normal((3, 23, 11))
        stacked = stack_a @ stack_b
        _STACKED_PROBE = all(
            np.array_equal(stacked[i], stack_a[i] @ stack_b[i]) for i in range(3)
        )
    return _STACKED_PROBE


def planned_gemm_cycles(accelerator: _AcceleratorBase, m: int, k: int, n: int) -> int:
    """The exact cycles ``accelerator.run_gemm`` will report for this shape.

    Unlike :meth:`estimate_gemm_cycles` (the Eq. 2/3 analytical pricing
    model, which pads ragged tiles), this is the tile-exact accounting the
    functional engines produce, so planned batch finish times match the
    executed :class:`RunResult` cycles exactly.  For scale-out fleets the
    Eq. 3 makespan is the maximum over the per-array share accountings.
    """
    rows, cols = accelerator.config.rows, accelerator.config.cols
    dataflow, axon = accelerator.dataflow, accelerator.axon
    p_r, p_c = accelerator.scale_out

    def share_cycles(sm: int, sk: int, sn: int) -> int:
        return gemm_cycle_accounting(
            sm, sk, sn, rows, cols, dataflow=dataflow, axon=axon
        ).total_cycles

    if (p_r, p_c) == (1, 1):
        return share_cycles(m, k, n)
    # Each non-empty Eq. 3 share runs as an independent scale-up GEMM; the
    # makespan is the slowest share.
    return max(
        share_cycles(*share)
        for share in iter_partition_share_shapes(m, k, n, dataflow, p_r, p_c)
    )


def _batch_eligible(accelerator: _AcceleratorBase, jobs: Sequence[AnyJob]) -> bool:
    """Whether the stacked-matmul fast path may run this batch."""
    if len(jobs) < 2 or not stacked_matmul_is_bitexact():
        return False
    if accelerator.engine != "wavefront" or accelerator.zero_gating:
        return False
    if accelerator.scale_out != (1, 1):
        return False
    shape = jobs[0].shape
    return all(job.shape == shape for job in jobs)


def run_batch(
    accelerator: _AcceleratorBase, jobs: Sequence[AnyJob]
) -> list[RunResult]:
    """Execute one batch's numerics, bit-exact with per-job ``run_gemm``.

    Same-shape batches on a plain wavefront worker take the stacked
    fast path: one ``(B, M, K) @ (B, K, N)`` matmul plus a single
    tile-group accounting shared by every job (with zero gating off, the
    accounting is a pure function of the shape).  Everything else — cycle
    or exact engines, zero gating, scale-out grids, mixed shapes — falls
    back to a per-job ``run_gemm`` loop, which is trivially bit-exact.
    """
    if not _batch_eligible(accelerator, jobs):
        return [accelerator.run_gemm(job.a, job.b, name=job.name) for job in jobs]

    m, k, n = jobs[0].shape
    accounting = gemm_cycle_accounting(
        m,
        k,
        n,
        accelerator.config.rows,
        accelerator.config.cols,
        dataflow=accelerator.dataflow,
        axon=accelerator.axon,
    )
    outputs = np.stack([job.a for job in jobs]) @ np.stack([job.b for job in jobs])
    macs = m * k * n
    utilization = _validated_utilization(
        macs,
        accelerator.config.num_pes,
        accounting.total_cycles,
        f"run_batch({jobs[0].name!r})",
    )
    return [
        RunResult(
            name=job.name,
            cycles=accounting.total_cycles,
            macs=macs,
            utilization=utilization,
            output=outputs[index],
            active_pe_cycles=macs,
            engine=accelerator.engine,
            performed_macs=macs,
            gated_macs=0,
            scale_out=(1, 1),
        )
        for index, job in enumerate(jobs)
    ]


@dataclass(frozen=True)
class _ScheduledBatch:
    """One planned dispatch: which jobs run where, and when (simulated).

    ``job_cycles`` are the healthy tile-exact service cycles (what the
    executed :class:`RunResult` reports and the drift assertion pins);
    ``service_cycles`` are the same durations after any slowdown fault in
    effect at dispatch.  When a fault plan cuts the batch,
    ``completed_count`` marks the executed prefix (the jobs whose
    stretched service fits before ``fail_cycle``) — the suffix never runs
    and is requeued by the planner.  A preemption cut reuses the same
    fields (``fail_cycle`` is the instant the executed prefix ends and
    the worker frees) with ``preempted=True``, so reporting can tell a
    policy cut from a fault.
    """

    batch_id: int
    worker_id: int
    start_cycle: int
    entries: tuple[QueuedJob, ...]
    job_cycles: tuple[int, ...]
    service_cycles: tuple[int, ...] = ()
    completed_count: int = -1
    fail_cycle: int | None = None
    preempted: bool = False

    def __post_init__(self) -> None:
        if not self.service_cycles:
            object.__setattr__(self, "service_cycles", self.job_cycles)
        if self.completed_count < 0:
            object.__setattr__(self, "completed_count", len(self.entries))

    @property
    def total_cycles(self) -> int:
        return sum(self.job_cycles)

    @property
    def finish_cycle(self) -> int:
        """When the batch would finish absent its fault (stretched)."""
        return self.start_cycle + sum(self.service_cycles)

    @property
    def end_cycle(self) -> int:
        """When the worker actually stops working on this batch."""
        return self.fail_cycle if self.fail_cycle is not None else self.finish_cycle

    @property
    def executed(self) -> tuple[QueuedJob, ...]:
        """The prefix of entries that actually runs to completion."""
        return self.entries[: self.completed_count]

    @property
    def last_start_cycle(self) -> int:
        """When the batch's final member begins executing (stretched).

        Once the simulated clock passes this instant every member has
        started, so there is no unexecuted suffix left to preempt.
        """
        return self.start_cycle + sum(self.service_cycles[:-1])


@dataclass
class _WorkerLedger:
    """Mutable per-worker occupancy while the schedule is being built."""

    worker_id: int
    jobs: int = 0
    batches: int = 0
    busy_cycles: int = 0
    failures: int = 0
    alive: bool = True


class _OnlinePlanner:
    """Incremental simulated-clock planner behind ``submit()`` and ``serve()``.

    Jobs are *offered* one at a time in arrival order; the planner advances
    the simulated clock to each arrival, firing every worker wake event
    strictly before it, so a dispatch at simulated cycle ``T`` only ever
    sees jobs whose arrival is ``<= T`` — exactly the information an online
    system has.  ``finish()`` marks the end of the stream and fires the
    remaining events (batching windows still run to their deadlines; the
    simulated clock does not know the stream ended).

    Worker life cycle: every worker is *idle* (parked, no pending event)
    until work could exist for it, *waking* (an event in the heap — because
    it finished a batch, a job arrived, a batching window closed, or a
    cheaper busy sibling is about to free up), or *busy* until
    ``_free_at``.  Stale wake events are invalidated lazily via the
    ``_wake`` map.

    Under a fault plan the planner additionally carries *requeue events*:
    a batch cut by a worker fault returns its unexecuted jobs to the fair
    queue at the failure cycle (interleaved with wakes in event order), a
    permanently dead worker leaves the idle/wake cycle for good, and a
    transient outage parks its worker until the outage window ends.  All
    of it stays on the simulated clock, so faulty runs are exactly as
    deterministic — and as streaming/one-shot bit-identical — as healthy
    ones.
    """

    def __init__(self, scheduler: "AsyncGemmScheduler") -> None:
        self._s = scheduler
        fleet_size = len(scheduler.fleet)
        self.tracer = scheduler.tracer
        self.admission = AdmissionController(
            scheduler.price_job,
            scheduler.budgets,
            scheduler.admission_policy,
            tracer=self.tracer,
        )
        self.queue = WeightedFairQueue(
            scheduler.weights,
            ordering=scheduler.ordering,
            slo_classes=scheduler.slo_classes,
            tracer=self.tracer,
        )
        self.ledgers = {wid: _WorkerLedger(wid) for wid in range(fleet_size)}
        self.batches: list[_ScheduledBatch] = []
        # A batch is *sealed* once no future planning event can cut it:
        # with preemption off that is at creation; otherwise once it was
        # fault- or preempt-cut, or the planning horizon passed its last
        # member's start (every member has begun executing by then).
        # Numerics launch and the batch's closing trace events wait for
        # the seal, so a preemption never races an execution.
        self.sealed: list[bool] = []
        self._unsealed: list[int] = []
        self.terminal: list[JobResult] = []
        self.tenants: set[str] = set()
        self.seen_ids: set[str] = set()
        self.horizon = 0
        self.finished = False
        self.injector = scheduler.fault_injector
        self._free_at = [0] * fleet_size
        self._heap: list[tuple[int, int]] = []
        self._wake: dict[int, int] = {}
        self._idle = set(range(fleet_size))
        self._window_wait: set[int] = set()
        self._requeues: list[tuple[int, int, QueuedJob]] = []
        self._requeue_seq = 0
        # Only the "random" placement baseline draws from this; the priced
        # policy is deterministic without it.
        self._rng = np.random.default_rng(scheduler.placement_seed)
        # Tracing state: ``_trace_cycle`` is the simulated instant cache
        # hit/miss/evict events are stamped with (pricing has no cycle of
        # its own — it happens "at" the admission or wake that asked).
        self._trace_cycle = 0
        self._cache_observer_installed = False
        self._prev_cache_observer: Callable[[str, Hashable], None] | None = None
        if self.tracer is not None:
            if self.injector is not None:
                self.injector.emit_plan(self.tracer, scheduler._track)
            # Observe the shared estimate cache for the lifetime of this
            # planner.  Cache traffic only happens from the planner's own
            # deterministic sections (admission pricing, placement), so the
            # event order is reproducible; the previous observer (if any)
            # is restored on finish().
            self._prev_cache_observer = set_estimate_cache_observer(
                self._on_cache_event
            )
            self._cache_observer_installed = True

    def _on_cache_event(self, kind: str, key: Hashable) -> None:
        """Forward one estimate-cache hit/miss/evict into the trace."""
        tracer = self.tracer
        if tracer is None:
            return
        family = key[0] if isinstance(key, tuple) and key else "other"
        tracer.instant(f"cache.{kind}", self._trace_cycle, family=str(family))

    def _restore_cache_observer(self) -> None:
        """Detach from the shared estimate cache (idempotent)."""
        if self._cache_observer_installed:
            self._cache_observer_installed = False
            set_estimate_cache_observer(self._prev_cache_observer)
            self._prev_cache_observer = None

    # -- event plumbing ---------------------------------------------------

    def _schedule_wake(self, worker_id: int, cycle: int) -> None:
        self._idle.discard(worker_id)
        self._wake[worker_id] = cycle
        heapq.heappush(self._heap, (cycle, worker_id))

    def _advance(self, limit: int | None) -> None:
        """Fire wake and requeue events strictly before ``limit`` (all when None).

        Strictly before: a worker waking at exactly an arrival instant must
        see that arrival queued first, which happens right after this call.
        Requeue events at a cycle fire before wakes at the same cycle, so a
        worker waking at a failure instant sees the returned work.
        """
        while True:
            wake_cycle = self._heap[0][0] if self._heap else None
            requeue_cycle = self._requeues[0][0] if self._requeues else None
            if requeue_cycle is not None and (
                wake_cycle is None or requeue_cycle <= wake_cycle
            ):
                if limit is not None and requeue_cycle >= limit:
                    return
                cycle, _, entry = heapq.heappop(self._requeues)
                self._requeue(entry, cycle)
                continue
            if wake_cycle is None:
                return
            cycle, worker_id = self._heap[0]
            if limit is not None and cycle >= limit:
                return
            heapq.heappop(self._heap)
            if self._wake.get(worker_id) != cycle:
                continue  # superseded by a later (or earlier) reschedule
            del self._wake[worker_id]
            self._window_wait.discard(worker_id)
            self._on_wake(worker_id, cycle)

    def _terminal_entry(
        self, entry: QueuedJob, status: str, cycle: int, attempts: int
    ) -> None:
        """Resolve a queued entry without executing it (no RunResult)."""
        job = entry.job
        result = JobResult(
            job_id=job.job_id,
            tenant=job.tenant,
            name=job.name,
            status=status,
            priced_cycles=entry.priced_cycles,
            arrival_cycle=job.arrival_cycle,
            deadline_hint_cycles=job.deadline_hint_cycles,
            deprioritized=entry.deprioritized,
            attempts=attempts,
            preemptions=entry.preemptions,
            slo=self._s.tenant_slo(job.tenant),
            resolved_cycle=cycle,
        )
        self.terminal.append(result)
        if self.tracer is not None:
            for event in result.trace_events():
                self.tracer.emit(event)

    def _lapsed(self, entry: QueuedJob, cycle: int) -> bool:
        """Whether the entry can no longer meet its deadline, even started now."""
        hint = entry.job.deadline_hint_cycles
        if hint is None:
            return False
        return cycle + entry.priced_cycles > entry.job.arrival_cycle + hint

    def _expire_queued(self, cycle: int) -> None:
        """Expire every queued job whose laxity has run out at ``cycle``."""
        for entry in self.queue.remove_matching(
            lambda entry: self._lapsed(entry, cycle)
        ):
            self._terminal_entry(entry, STATUS_EXPIRED, cycle, entry.attempts)

    def _notify_work(self, entry_cycle: int, shape: tuple[int, int, int]) -> None:
        """Wake idle (alive) workers and close filled batching windows."""
        for worker_id in sorted(self._idle):
            if self.injector is not None and not self.injector.alive(
                worker_id, entry_cycle
            ):
                continue
            self._schedule_wake(
                worker_id, max(self._free_at[worker_id], entry_cycle)
            )
        # Early window close: once a full batch of this shape is waiting,
        # a window-holding worker has nothing left to wait for.
        if self._window_wait and self.queue.count_shape(shape) >= self._s.max_batch:
            for worker_id in sorted(self._window_wait):
                self._schedule_wake(
                    worker_id, max(self._free_at[worker_id], entry_cycle)
                )
            self._window_wait.clear()

    def _no_alive_workers(self, cycle: int) -> bool:
        """Whether every fleet member has permanently died by ``cycle``."""
        if self.injector is None:
            return False
        return all(
            not self.injector.alive(worker_id, cycle)
            for worker_id in range(len(self._s.fleet))
        )

    def _requeue(self, entry: QueuedJob, cycle: int) -> None:
        """Return a fault-interrupted job to the queue at the failure cycle."""
        if self._s.enforce_deadlines and self._lapsed(entry, cycle):
            self._terminal_entry(entry, STATUS_EXPIRED, cycle, entry.attempts)
            return
        if self._no_alive_workers(cycle):
            self._terminal_entry(entry, STATUS_FAILED, cycle, entry.attempts)
            return
        self.queue.push(entry)
        self._notify_work(cycle, entry.job.shape)

    # -- preemption and batch sealing -------------------------------------

    def _emit_batch_close(self, batch: _ScheduledBatch) -> None:
        """Emit a batch's closing trace events (execute span, close, idle).

        With preemption off this happens inline at dispatch; otherwise it
        is deferred until the batch seals, so the span's duration and
        completed count reflect any preemption cut.
        """
        tracer = self.tracer
        if tracer is None:
            return
        pid, tid = self._s._track[batch.worker_id]
        tracer.complete(
            "batch.execute",
            batch.start_cycle,
            batch.end_cycle - batch.start_cycle,
            pid=pid,
            tid=tid,
            batch_id=batch.batch_id,
            size=len(batch.entries),
            completed=batch.completed_count,
            worker_id=batch.worker_id,
            faulted=batch.fail_cycle is not None and not batch.preempted,
        )
        tracer.instant(
            "batch.close",
            batch.end_cycle,
            pid=pid,
            tid=tid,
            batch_id=batch.batch_id,
            completed=batch.completed_count,
        )
        if batch.fail_cycle is None or batch.preempted:
            # The worker survives the batch (healthy finish or preemption
            # cut); a fault-cut worker is down or dead, not idle.
            tracer.instant(
                "worker.idle",
                batch.end_cycle,
                pid=pid,
                tid=tid,
                worker_id=batch.worker_id,
            )

    def _seal(self, index: int) -> None:
        """Mark one batch beyond preemption's reach and emit its close."""
        if self.sealed[index]:
            return
        self.sealed[index] = True
        self._emit_batch_close(self.batches[index])

    def _seal_ready(self) -> None:
        """Seal every batch the planning horizon has made uncuttable.

        Preemption decisions only happen while offering a job, at cycles
        ``>= horizon``; once a batch's last member has started before the
        horizon there is no unstarted suffix any future offer could cut,
        so its numerics may launch and its closing trace events are final.
        """
        still: list[int] = []
        for index in self._unsealed:
            batch = self.batches[index]
            if batch.fail_cycle is not None or batch.last_start_cycle < self.horizon:
                self._seal(index)
            else:
                still.append(index)
        self._unsealed = still

    def _seal_all(self) -> None:
        """Seal every remaining batch (stream over: no more offers can cut)."""
        for index in self._unsealed:
            self._seal(index)
        self._unsealed = []

    def _maybe_preempt(self, entry: QueuedJob, cycle: int) -> None:
        """Cut a not-yet-executed batch suffix for a tight arrival.

        Fires only when preemption is enabled, ``entry`` is a hinted
        latency-target job, and *no* worker — free or busy — can meet its
        deadline as things stand.  The victim is the unsealed batch whose
        cut frees a deadline-meeting worker soonest, provided every
        displaced member has strictly looser laxity and preemption
        headroom; displaced members requeue at this cycle with
        ``attempts`` unchanged.  Executed (started) members always stay.
        """
        scheduler = self._s
        if scheduler.max_preemptions < 1:
            return
        deadline = entry.deadline_cycle
        if (
            deadline is None
            or entry.deprioritized
            or scheduler.tenant_slo(entry.job.tenant) != SLO_LATENCY_TARGET
        ):
            return
        shape = entry.job.shape
        for worker_id in range(len(scheduler.fleet)):
            available = self._available_at(worker_id, cycle)
            if available is None:
                continue
            if available + scheduler.placement_cost(shape, worker_id) <= deadline:
                return  # someone meets the deadline without a cut
        urgency = entry.laxity(cycle)
        assert urgency is not None  # hinted, checked above
        best: tuple[tuple[int, int], int, int] | None = None
        for index in self._unsealed:
            batch = self.batches[index]
            if batch.fail_cycle is not None:
                continue
            completed = 0
            cut_cycle = batch.start_cycle
            for duration in batch.service_cycles:
                if cut_cycle >= cycle:
                    break  # this member has not started: cuttable suffix
                completed += 1
                cut_cycle += duration
            if completed == len(batch.entries):
                continue
            displaced = batch.entries[completed:]
            if any(
                d.preemptions >= scheduler.max_preemptions for d in displaced
            ):
                continue
            laxities = [d.laxity(cycle) for d in displaced]
            if any(lax is not None and lax <= urgency for lax in laxities):
                continue  # only strictly looser work may be displaced
            if cut_cycle + scheduler.placement_cost(shape, batch.worker_id) > deadline:
                continue  # cutting here would not rescue the deadline
            key = ((cut_cycle, batch.worker_id), index, completed)
            if best is None or key[0] < best[0]:
                best = key
        if best is None:
            return
        _, index, completed = best
        batch = self.batches[index]
        cut_cycle = batch.start_cycle + sum(batch.service_cycles[:completed])
        displaced = batch.entries[completed:]
        self.batches[index] = dataclasses.replace(
            batch,
            completed_count=completed,
            fail_cycle=cut_cycle,
            preempted=True,
        )
        # Roll the dispatch-time accounting back to the executed prefix;
        # a preemption cut is not a failure.
        ledger = self.ledgers[batch.worker_id]
        ledger.jobs -= len(batch.entries) - completed
        ledger.busy_cycles -= batch.finish_cycle - cut_cycle
        tracer = self.tracer
        if tracer is not None:
            pid, tid = self._s._track[batch.worker_id]
            tracer.instant(
                "batch.cut",
                cycle,
                pid=pid,
                tid=tid,
                batch_id=batch.batch_id,
                completed=completed,
                displaced=len(displaced),
                reason="preempt",
                worker_id=batch.worker_id,
                by=entry.job.job_id,
            )
            for d in displaced:
                tracer.instant(
                    "job.preempted",
                    cycle,
                    job_id=d.job.job_id,
                    tenant=d.job.tenant,
                    batch_id=batch.batch_id,
                    preemptions=d.preemptions + 1,
                    by=entry.job.job_id,
                )
        self._free_at[batch.worker_id] = cut_cycle
        self._schedule_wake(batch.worker_id, cut_cycle)
        self._seal(index)
        for d in displaced:
            self._requeue(
                dataclasses.replace(
                    d, enqueued_cycle=cycle, preemptions=d.preemptions + 1
                ),
                cycle,
            )

    # -- the streaming interface ------------------------------------------

    def offer(self, job: AnyJob) -> None:
        """Admit one job at its arrival cycle and plan up to that instant.

        Jobs should be offered in ``(arrival_cycle, job_id)`` order; a job
        offered late (arrival before the current planning horizon) is
        enqueued at the horizon instead — already-planned dispatches are
        never revised.  Executed work is never revised either: preemption
        (when enabled) only ever cuts the unstarted suffix of an unsealed
        batch, and the offer ends by sealing every batch the new horizon
        puts beyond preemption's reach.
        """
        self._offer(job)
        self._seal_ready()

    def _offer(self, job: AnyJob) -> None:
        if self.finished:
            raise RuntimeError("stream already drained; start a new one")
        if job.job_id in self.seen_ids:
            raise ValueError(f"duplicate job_id {job.job_id!r} in trace")
        scheduler = self._s
        self.seen_ids.add(job.job_id)
        self.tenants.add(job.tenant)
        self._advance(job.arrival_cycle)
        entry_cycle = max(job.arrival_cycle, self.horizon)
        self.horizon = entry_cycle
        self._trace_cycle = entry_cycle
        if self.tracer is not None:
            self.tracer.instant(
                "job.arrival",
                job.arrival_cycle,
                job_id=job.job_id,
                tenant=job.tenant,
                shape=_shape_label(job.shape),
            )
        if scheduler.enforce_deadlines:
            self._expire_queued(entry_cycle)

        decision = self.admission.admit(job, cycle=entry_cycle)
        if not decision.admitted:
            result = JobResult(
                job_id=job.job_id,
                tenant=job.tenant,
                name=job.name,
                status=STATUS_REJECTED,
                priced_cycles=decision.priced_cycles,
                arrival_cycle=job.arrival_cycle,
                deadline_hint_cycles=job.deadline_hint_cycles,
                slo=scheduler.tenant_slo(job.tenant),
                resolved_cycle=entry_cycle,
            )
            self.terminal.append(result)
            if self.tracer is not None:
                for event in result.trace_events():
                    self.tracer.emit(event)
            return
        entry = QueuedJob(
            job,
            decision.priced_cycles,
            decision.deprioritized,
            enqueued_cycle=entry_cycle,
        )
        # A deadline that is already unmeetable at arrival expires at the
        # door — the fleet never spends cycles on it.
        if scheduler.enforce_deadlines and self._lapsed(entry, entry_cycle):
            self._terminal_entry(entry, STATUS_EXPIRED, entry_cycle, 0)
            return
        # Overload shedding: when admitting this job would push the queued
        # backlog past the threshold, best-effort work is shed first — the
        # incoming job itself if it is best-effort, else the oldest queued
        # best-effort entries make room for the latency-target arrival.
        if (
            scheduler.shed_cycles is not None
            and self.queue.total_priced_cycles() + entry.priced_cycles
            > scheduler.shed_cycles
        ):
            if scheduler.tenant_slo(job.tenant) != SLO_LATENCY_TARGET:
                self._terminal_entry(entry, STATUS_SHED, entry_cycle, 0)
                return
            self.queue.push(entry)
            while self.queue.total_priced_cycles() > scheduler.shed_cycles:
                victim = self.queue.pop_oldest(
                    lambda queued: scheduler.tenant_slo(queued.job.tenant)
                    != SLO_LATENCY_TARGET
                )
                if victim is None:
                    break
                self._terminal_entry(
                    victim, STATUS_SHED, entry_cycle, victim.attempts
                )
            self._notify_work(entry_cycle, job.shape)
            self._maybe_preempt(entry, entry_cycle)
            return
        self.queue.push(entry)
        # Work exists again: idle workers become dispatch candidates the
        # moment this job is visible.
        self._notify_work(entry_cycle, job.shape)
        self._maybe_preempt(entry, entry_cycle)

    def cancel(self, job_id: str) -> bool:
        """Withdraw a queued (or requeued) job; False once it is executing.

        Cancellation is planner-local bookkeeping on the simulated clock:
        the entry leaves the fair queue and resolves as ``cancelled`` at
        the current planning horizon.  Jobs already inside a dispatched
        batch — or already resolved — are not cancellable.
        """
        if self.finished:
            return False
        entry = self.queue.pop_job(job_id)
        if entry is None:
            # The job may still be waiting in a pending requeue event.
            for index, (cycle, seq, queued) in enumerate(self._requeues):
                if queued.job.job_id == job_id:
                    self._requeues.pop(index)
                    heapq.heapify(self._requeues)
                    self._terminal_entry(
                        queued, STATUS_CANCELLED, max(self.horizon, cycle),
                        queued.attempts,
                    )
                    return True
            return False
        self._terminal_entry(entry, STATUS_CANCELLED, self.horizon, entry.attempts)
        return True

    def finish(
        self,
    ) -> tuple[list[_ScheduledBatch], list[JobResult], dict[int, _WorkerLedger]]:
        """End the stream and fire every remaining event.

        Returns ``(batches, terminal, ledgers)`` where ``terminal`` holds
        every job resolved without execution (rejected, failed, cancelled,
        expired, shed); idempotent.  Work stranded by a fully dead fleet
        resolves as ``failed`` here rather than being silently dropped.
        """
        if not self.finished:
            self.finished = True
            self._advance(None)
            # No more offers can arrive, so no future event can cut any
            # still-open batch: seal them all and emit their closes.
            self._seal_all()
            for entry in self.queue.remove_matching(lambda entry: True):
                self._terminal_entry(
                    entry, STATUS_FAILED, self.horizon, entry.attempts
                )
            self._restore_cache_observer()
        return self.batches, self.terminal, self.ledgers

    # -- dispatch decisions -----------------------------------------------

    def _on_wake(self, worker_id: int, cycle: int) -> None:
        scheduler = self._s
        self._trace_cycle = cycle
        if scheduler.enforce_deadlines:
            self._expire_queued(cycle)
        while True:
            head = self.queue.peek_head(now=cycle)
            if head is None:
                self._idle.add(worker_id)
                return
            window = scheduler.batch_window_cycles
            if window:
                # The head's batching window: hold the dispatch open until
                # `enqueued + window` for same-shape mates, unless a full
                # batch is already waiting.
                deadline = head.enqueued_cycle + window
                if (
                    cycle < deadline
                    and self.queue.count_shape(head.job.shape) < scheduler.max_batch
                ):
                    self._schedule_wake(worker_id, deadline)
                    self._window_wait.add(worker_id)
                    if self.tracer is not None:
                        self.tracer.instant(
                            "batch.window_open",
                            cycle,
                            worker_id=worker_id,
                            deadline=deadline,
                            shape=_shape_label(head.job.shape),
                        )
                    return
            target, defer_until = self._place(head, cycle)
            if target is None:
                if defer_until is None:
                    # Every fleet member has permanently died: nothing can
                    # ever host this work again.  finish() resolves the
                    # stranded queue as failed.
                    return
                self._schedule_wake(worker_id, defer_until)
                return
            if not self._dispatch(target, cycle):
                # Every dequeued member expired at dispatch; the queue
                # shrank, so retry with the next head-of-line batch.
                continue
            if target == worker_id:
                return
            # This worker stayed free (a sibling out-priced it for that
            # shape); let it try to host the next head-of-line batch.

    def _available_at(self, worker_id: int, cycle: int) -> int | None:
        """Earliest instant >= ``cycle`` this worker could start a batch.

        ``None`` for a worker that has permanently died (it can never
        start again).  Transient outage windows push the start past their
        end; a worker still busy with a batch starts when it frees.  With
        no fault plan this is simply ``max(free_at, cycle)``.
        """
        start = max(self._free_at[worker_id], cycle)
        injector = self.injector
        if injector is None:
            return start
        while True:
            until = injector.unavailable_until(worker_id, start)
            if until is None:
                break
            start = until
        death = injector.permanent_at(worker_id)
        if death is not None and start >= death:
            return None
        return start

    def _place(
        self, head: QueuedJob, cycle: int
    ) -> tuple[int | None, int | None]:
        """Choose the worker to host the head batch, or defer.

        Ranks worker classes by the estimate-cache price of the head's
        shape (:meth:`AsyncGemmScheduler.placement_cost`) and returns
        ``(worker_id, None)`` for the free worker with the soonest priced
        finish — or ``(None, wake_cycle)`` when a *busy* (or transiently
        down) worker would still finish the job sooner than any free one,
        in which case the caller parks until it is available.  Permanently
        dead workers are drained from consideration entirely; ``(None,
        None)`` means the whole fleet is dead.  Under the ``"random"``
        baseline the batch lands on a uniformly drawn live worker instead.

        Under a deadline ordering, a hinted latency-target head places by
        *laxity* instead: among free workers that meet its deadline, the
        tightest fit wins (least slack after the priced finish), keeping
        the faster classes available for queued work with less room — and
        when only a busy worker can meet the deadline, the head waits for
        it rather than starting hopelessly late on a free one.  With no
        feasible host at all it falls back to the earliest-finish policy.
        """
        scheduler = self._s
        shape = head.job.shape
        fleet_size = len(scheduler.fleet)
        if scheduler.placement == PLACEMENT_RANDOM:
            candidates = [
                v for v in range(fleet_size) if self._available_at(v, cycle) is not None
            ]
            if not candidates:
                return None, None
            if len(candidates) == fleet_size:
                # Bit-compatible with the fault-free baseline: same draw
                # stream as indexing the whole fleet directly.
                return int(self._rng.integers(fleet_size)), None
            return candidates[int(self._rng.integers(len(candidates)))], None
        costs = [
            scheduler.placement_cost(shape, worker_id)
            for worker_id in range(fleet_size)
        ]
        free: list[int] = []
        busy: list[tuple[int, int, int]] = []
        for v in range(fleet_size):
            available = self._available_at(v, cycle)
            if available is None:
                continue
            if available <= cycle:
                free.append(v)
            else:
                busy.append((available + costs[v], available, v))
        if not free and not busy:
            return None, None
        deadline = head.deadline_cycle
        if (
            scheduler.ordering != ORDERING_FAIR
            and deadline is not None
            and not head.deprioritized
            and scheduler.tenant_slo(head.job.tenant) == SLO_LATENCY_TARGET
        ):
            feasible_free = [v for v in free if cycle + costs[v] <= deadline]
            if feasible_free:
                return (
                    min(
                        feasible_free,
                        key=lambda v: (deadline - (cycle + costs[v]), costs[v], v),
                    ),
                    None,
                )
            feasible_busy = [entry for entry in busy if entry[0] <= deadline]
            if feasible_busy:
                _, frees_at, _ = min(feasible_busy)
                return None, frees_at
            # No feasible host either way: fall through so the job still
            # runs (or expires at dispatch) as soon as possible.
        if not free:
            _, frees_at, _ = min(busy)
            return None, frees_at
        best_free = min(free, key=lambda v: (costs[v], v))
        best_free_finish = cycle + costs[best_free]
        if busy:
            finish, frees_at, _ = min(busy)
            if finish < best_free_finish:
                # Waiting for the faster sibling beats starting now on the
                # best free worker; re-evaluate when it frees (strictly
                # later, so the event loop always makes progress).
                return None, frees_at
        return best_free, None

    def _drop_unmeetable(
        self,
        entries: tuple[QueuedJob, ...],
        target: int,
        start: int,
        cycle: int,
    ) -> tuple[QueuedJob, ...]:
        """Expire dequeued members whose projected in-batch finish is late.

        Queue-time laxity checks price a job starting *now* on its best
        class; by dispatch the hosting class, batch position and any
        slowdown fault in effect are known, so each member's finish is
        re-projected and a member that would complete past its deadline
        expires instead of occupying the worker — a completed job never
        finishes late under ``enforce_deadlines``.
        """
        scheduler = self._s
        injector = self.injector
        kept: list[QueuedJob] = []
        elapsed = start
        for entry in entries:
            planned = scheduler.planned_job_cycles(entry.job, target)
            duration = (
                planned
                if injector is None
                else injector.stretch(target, start, planned)
            )
            deadline = entry.deadline_cycle
            if deadline is not None and elapsed + duration > deadline:
                self._terminal_entry(entry, STATUS_EXPIRED, cycle, entry.attempts)
                continue
            kept.append(entry)
            elapsed += duration
        return tuple(kept)

    def _dispatch(self, target: int, cycle: int) -> bool:
        """Dequeue the head batch onto ``target``; False if nothing ran.

        A False return means every dequeued member expired at dispatch
        (``enforce_deadlines`` re-projection) — the worker stays free and
        the caller should retry against the shrunken queue.
        """
        scheduler = self._s
        self._trace_cycle = cycle
        # Adaptive batch bound: a batch occupies its worker for the sum of
        # its jobs' cycles, so hoarding the whole backlog would idle the
        # siblings that free up mid-batch and stretch the makespan.  Cap
        # each batch at one fair slice (1/fleet) of the queued work; deep
        # backlogs still batch to max_batch.
        budget = -(-self.queue.total_priced_cycles() // len(scheduler.fleet))
        entries = tuple(
            self.queue.next_batch(scheduler.max_batch, cycle_budget=budget, now=cycle)
        )
        start = self._available_at(target, cycle)
        assert start is not None, "placement never selects a dead worker"
        if scheduler.enforce_deadlines:
            entries = self._drop_unmeetable(entries, target, start, cycle)
            if not entries:
                return False
        job_cycles = tuple(
            scheduler.planned_job_cycles(entry.job, target) for entry in entries
        )
        injector = self.injector
        if injector is None:
            service_cycles = job_cycles
            failure = None
        else:
            service_cycles = tuple(
                injector.stretch(target, start, cycles) for cycles in job_cycles
            )
            failure = injector.next_failure(target, start)
        finish = start + sum(service_cycles)
        fail_cycle: int | None = None
        resume: int | None = None
        completed = len(entries)
        if failure is not None and failure.cycle < finish:
            # The fault cuts the batch: jobs whose stretched service fits
            # entirely before the failure instant complete; the suffix is
            # lost and requeues (or fails out) at the failure cycle.
            fail_cycle = failure.cycle
            resume = failure.resume_cycle
            completed = 0
            elapsed = start
            for duration in service_cycles:
                if elapsed + duration > fail_cycle:
                    break
                completed += 1
                elapsed += duration
        batch = _ScheduledBatch(
            batch_id=len(self.batches),
            worker_id=target,
            start_cycle=start,
            entries=entries,
            job_cycles=job_cycles,
            service_cycles=service_cycles,
            completed_count=completed,
            fail_cycle=fail_cycle,
        )
        self.batches.append(batch)
        self.sealed.append(False)
        tracer = self.tracer
        if tracer is not None:
            pid, tid = scheduler._track[target]
            tracer.instant(
                "batch.open",
                start,
                pid=pid,
                tid=tid,
                batch_id=batch.batch_id,
                size=len(entries),
                shape=_shape_label(entries[0].job.shape),
                worker_id=target,
            )
            for entry in entries:
                tracer.instant(
                    "job.dispatched",
                    start,
                    pid=pid,
                    tid=tid,
                    job_id=entry.job.job_id,
                    tenant=entry.job.tenant,
                    batch_id=batch.batch_id,
                    attempts=entry.attempts + 1,
                )
            tracer.instant("worker.busy", start, pid=pid, tid=tid, worker_id=target)
        # Seal immediately when nothing can ever cut this batch (emitting
        # its closing trace events in place, which with preemption off is
        # byte-identical to the pre-sealing emission order); otherwise
        # park it until the horizon passes its last member's start.
        if (
            scheduler.max_preemptions < 1
            or fail_cycle is not None
            or batch.last_start_cycle < self.horizon
        ):
            self._seal(batch.batch_id)
        else:
            self._unsealed.append(batch.batch_id)
        if tracer is not None:
            tracer.counter("queue.depth", cycle, depth=len(self.queue))
        ledger = self.ledgers[target]
        ledger.jobs += completed
        ledger.batches += 1
        ledger.busy_cycles += batch.end_cycle - start
        if fail_cycle is None:
            self._free_at[target] = finish
            self._schedule_wake(target, finish)
            return True
        ledger.failures += 1
        for entry in entries[completed:]:
            attempts = entry.attempts + 1
            if attempts > scheduler.max_retries:
                self._terminal_entry(entry, STATUS_FAILED, fail_cycle, attempts)
            else:
                if tracer is not None:
                    tracer.instant(
                        "job.requeued",
                        fail_cycle,
                        job_id=entry.job.job_id,
                        tenant=entry.job.tenant,
                        attempts=attempts,
                        worker_id=target,
                    )
                self._requeue_seq += 1
                heapq.heappush(
                    self._requeues,
                    (
                        fail_cycle,
                        self._requeue_seq,
                        dataclasses.replace(
                            entry, attempts=attempts, enqueued_cycle=fail_cycle
                        ),
                    ),
                )
        if resume is None:
            # Permanent death: the worker leaves the wake cycle for good
            # and _place never considers it again.
            ledger.alive = False
            self._free_at[target] = fail_cycle
            self._idle.discard(target)
        else:
            self._free_at[target] = resume
            self._schedule_wake(target, resume)
        return True


@dataclass
class _StreamState:
    """One open ``submit()`` stream: its planner and eager executions.

    ``futures`` is slot-per-batch: a ``None`` slot is a planned batch
    whose numerics have not launched yet (it is still preemptible); the
    slot is filled the moment the batch seals.
    """

    planner: _OnlinePlanner
    pool: ThreadPoolExecutor
    futures: list = field(default_factory=list)
    wall_start: float = 0.0
    cache_before: object = None
    groups_before: object = None
    disk_before: object = None


class AsyncGemmScheduler:
    """Schedules many concurrent GEMM jobs across an accelerator fleet.

    Parameters
    ----------
    fleet:
        One or more accelerator instances.  The fleet may be heterogeneous:
        workers are grouped into *classes* by configuration
        (:meth:`repro.api._AcceleratorBase.describe`), each class has its
        own per-shape cycle costs, and the placement policy decides which
        class hosts each batch.
    max_batch:
        Upper bound on jobs per dispatched batch (same-shape jobs are
        packed together; 1 disables batching).
    weights:
        Per-tenant fair-share weights (default 1.0 each).
    budgets:
        Per-tenant priced-cycle budgets for the admission controller
        (absent tenants are unmetered).
    admission_policy:
        ``"deprioritize"`` (default) or ``"reject"`` for over-budget jobs.
    clock_hz:
        Simulated clock frequency used to convert cycles to seconds in the
        report.
    batch_window_cycles:
        Batching window: an idle worker holds a young head-of-line batch
        open for up to this many simulated cycles past its queue entry,
        gathering same-shape mates that arrive within the window, then
        dispatches at the deadline (earlier when a full batch is already
        waiting).  ``None`` or 0 (default) disables the wait — a worker
        dispatches the moment it is free, which is also the pre-streaming
        planner's behavior.
    placement:
        ``"priced"`` (default) places each batch on the worker with the
        soonest estimated finish, pricing every (job-shape, worker-class)
        pair through the shared estimate cache; ``"random"`` assigns
        uniformly at random (the baseline heterogeneous placement is
        benchmarked against).
    placement_seed:
        Seed for the ``"random"`` placement baseline (ignored otherwise).
    fault_plan:
        Optional :class:`repro.serve.faults.FaultPlan` of scripted worker
        faults on the simulated clock (permanent deaths, transient
        outages, slowdowns).  Batches cut by a fault requeue their
        unexecuted jobs; completed jobs stay bit-exact regardless.
    max_retries:
        Extra dispatch attempts a fault-interrupted job is allowed after
        its first (default 2); a job whose attempts are exhausted resolves
        as ``failed``.
    ordering:
        Queue ordering policy (:data:`repro.serve.queues.ORDERINGS`).
        ``"fair"`` (default) is pure weighted-fair stride scheduling;
        ``"edf"`` serves hinted latency-target jobs earliest deadline
        first, ``"least-laxity"`` by remaining slack (``deadline - now -
        priced_cycles``, re-evaluated on the simulated clock at each
        dequeue) — in both cases ahead of the fair rotation, which
        best-effort tenants keep among themselves.  Placement becomes
        laxity-aware too: a hinted latency-target head lands on the
        tightest worker that still meets its deadline (waiting for a
        feasible busy worker over starting late on a free one),
        preserving the faster classes for queued work with less slack.
    max_preemptions:
        Per-job cap on preemptions (default 0 = preemption disabled).
        When positive, a hinted latency-target arrival that no worker can
        serve within its deadline may cut the *unstarted* suffix of a
        batch whose displaced members all have strictly looser laxity;
        the displaced jobs requeue with ``attempts`` unchanged
        (preemption is not a retry) and each job is displaced at most
        ``max_preemptions`` times, so a stream of tight arrivals can
        never livelock looser work.  Executed prefixes are never revoked
        and results stay bit-exact.
    enforce_deadlines:
        When True, ``deadline_hint_cycles`` becomes binding: queued jobs
        whose laxity has run out (``now + priced_cycles`` past the
        deadline) expire instead of occupying the fleet, and the
        dispatcher re-projects each batch member's in-batch finish at
        dispatch, expiring members that would complete past their
        deadline — a completed job never finishes late.
    shed_cycles:
        Overload threshold on queued priced cycles.  When admitting a job
        would push the backlog past it, best-effort work is shed —
        incoming best-effort jobs at the door, the oldest queued
        best-effort entries when the arrival is latency-target.  ``None``
        (default) disables shedding.
    slo_classes:
        Per-tenant SLO class mapping (``"latency-target"`` or
        ``"best-effort"``); absent tenants are best-effort.  Only the
        shedding policy reads it.
    tracer:
        Optional :class:`repro.obs.tracer.Tracer`.  When attached, the
        planner emits the full simulated-clock event stream (job
        lifecycle, batch spans, queue depth, cache hit/miss/evict, fault
        plan) into it; ``None`` (default) keeps every emission site a
        single ``is not None`` check.  Traces are deterministic: two
        same-seed runs emit byte-identical event streams, and streamed
        vs one-shot serving emit event-for-event identical traces
        (given identical estimate-cache starting state).
    """

    def __init__(
        self,
        fleet: Sequence[_AcceleratorBase],
        *,
        max_batch: int = 8,
        weights: Mapping[str, float] | None = None,
        budgets: Mapping[str, int] | None = None,
        admission_policy: str = POLICY_DEPRIORITIZE,
        clock_hz: float = DEFAULT_CLOCK_HZ,
        batch_window_cycles: int | None = None,
        placement: str = PLACEMENT_PRICED,
        placement_seed: int = 0,
        fault_plan: FaultPlan | None = None,
        max_retries: int = 2,
        ordering: str = ORDERING_FAIR,
        max_preemptions: int = 0,
        enforce_deadlines: bool = False,
        shed_cycles: int | None = None,
        slo_classes: Mapping[str, str] | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        fleet = list(fleet)
        if not fleet:
            raise ValueError("fleet must contain at least one accelerator")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {clock_hz}")
        if batch_window_cycles is not None and batch_window_cycles < 0:
            raise ValueError(
                f"batch_window_cycles must be >= 0, got {batch_window_cycles}"
            )
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; "
                f"expected one of {', '.join(PLACEMENTS)}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; "
                f"expected one of {', '.join(ORDERINGS)}"
            )
        if max_preemptions < 0:
            raise ValueError(
                f"max_preemptions must be >= 0, got {max_preemptions}"
            )
        if shed_cycles is not None and shed_cycles < 1:
            raise ValueError(f"shed_cycles must be >= 1, got {shed_cycles}")
        for tenant, slo in dict(slo_classes or {}).items():
            if slo not in SLO_CLASSES:
                raise ValueError(
                    f"tenant {tenant!r}: unknown SLO class {slo!r}; "
                    f"expected one of {', '.join(SLO_CLASSES)}"
                )
        self.fleet = fleet
        self.max_batch = max_batch
        self.weights = dict(weights or {})
        self.budgets = dict(budgets or {})
        self.admission_policy = admission_policy
        self.clock_hz = clock_hz
        self.batch_window_cycles = batch_window_cycles
        self.placement = placement
        self.placement_seed = placement_seed
        self.fault_plan = fault_plan
        self.fault_injector = (
            FaultInjector(fault_plan, len(fleet))
            if fault_plan is not None and fault_plan.faults
            else None
        )
        self.max_retries = max_retries
        self.ordering = ordering
        self.max_preemptions = max_preemptions
        self.enforce_deadlines = enforce_deadlines
        self.shed_cycles = shed_cycles
        self.slo_classes = dict(slo_classes or {})
        # Group the fleet into worker classes: workers with identical
        # signatures run any job identically, so one representative per
        # class prices and plans for all of them.
        classes = group_worker_classes(fleet)
        self._class_reps = list(classes.class_reps)
        self._worker_class_ids = list(classes.worker_class_ids)
        self.worker_classes = classes.labels
        self.tracer = tracer
        # Trace track per worker: one pid per worker class (pid 0 is the
        # scheduler's own track), one tid per worker.
        self._track: dict[int, tuple[int, int]] = {
            worker_id: (class_id + 1, worker_id)
            for worker_id, class_id in enumerate(self._worker_class_ids)
        }
        if tracer is not None:
            tracer.set_process_label(0, "scheduler")
            for class_id, label in enumerate(self.worker_classes):
                tracer.set_process_label(class_id + 1, label)
            for worker_id, (pid, tid) in self._track.items():
                tracer.set_thread_label(pid, tid, f"worker {worker_id}")
        # Two locks for the two pieces of cross-thread mutable state.
        # ``_lock`` guards the open submit() stream: submit() may run on
        # the event-loop thread while drain() runs on an executor thread
        # (drain_async does exactly that).  ``_memo_lock`` guards the
        # planned-cycles memo; it is a *leaf* lock — planned_job_cycles is
        # called from inside the planner while submit() already holds
        # ``_lock`` (and the locks are non-reentrant), so the memo needs
        # its own, and it never acquires anything else while held.
        # Everything else on the scheduler is immutable after
        # construction.  reprolint's lock-discipline rule (RPL101)
        # enforces that these attributes are never touched off-lock.
        self._lock = threading.Lock()
        self._memo_lock = threading.Lock()
        self._planned_cycles_memo: dict[tuple, int] = {}
        self._stream: _StreamState | None = None

    @property
    def fleet_description(self) -> tuple[str, ...]:
        """Per-worker class labels, in fleet order (for the report)."""
        return tuple(
            self.worker_classes[class_id] for class_id in self._worker_class_ids
        )

    def worker_class(self, worker_id: int) -> str:
        """The class label of one fleet member."""
        return self.worker_classes[self._worker_class_ids[worker_id]]

    def tenant_slo(self, tenant: str) -> str:
        """The tenant's SLO class (best-effort unless configured otherwise)."""
        return self.slo_classes.get(tenant, SLO_BEST_EFFORT)

    # -- pricing ----------------------------------------------------------

    def price_job(self, job: AnyJob) -> int:
        """Admission price: the best-case placement of the job's shape.

        The minimum over worker classes of the Eq. 2/3 analytical estimate
        (each memoized in the shared estimate cache, so steady-state
        traffic is all hits).  On a homogeneous fleet this is exactly the
        single-class estimate the pre-streaming scheduler charged.
        """
        return min(
            rep.estimate_gemm_cycles(job.m, job.k, job.n)
            for rep in self._class_reps
        )

    def placement_cost(self, shape: tuple[int, int, int], worker_id: int) -> int:
        """Estimate-cache price of one job of ``shape`` on this worker.

        The (job-shape, worker-class) pricing the placement policy ranks
        candidate hosts by; repeated lookups are estimate-cache hits.
        """
        rep = self._class_reps[self._worker_class_ids[worker_id]]
        return rep.estimate_gemm_cycles(*shape)

    def planned_job_cycles(self, job: AnyJob, worker_id: int) -> int:
        """Tile-exact cycles ``job`` will occupy this worker for (memoized).

        This is what the executed :class:`RunResult` will report on that
        worker's class, so planned finish times are asserted against
        execution.
        """
        key = (job.shape, self._worker_class_ids[worker_id])
        with self._memo_lock:
            cycles = self._planned_cycles_memo.get(key)
        if cycles is None:
            # Computed outside the lock: the accounting is pure, so a
            # concurrent duplicate computation is harmless and brief.
            rep = self._class_reps[self._worker_class_ids[worker_id]]
            cycles = planned_gemm_cycles(rep, *job.shape)
            with self._memo_lock:
                self._planned_cycles_memo[key] = cycles
        return cycles

    # -- streaming API (online arrivals) -----------------------------------

    def _open_stream(self) -> _StreamState:
        assert self._lock.locked(), "caller must hold the scheduler lock"
        if self._stream is None:
            self._stream = _StreamState(
                planner=_OnlinePlanner(self),
                pool=ThreadPoolExecutor(max_workers=max(1, len(self.fleet))),
                wall_start=time.perf_counter(),
                cache_before=estimate_cache_info(),
                groups_before=estimate_cache_group_info(),
                disk_before=estimate_cache_disk_info(),
            )
        return self._stream

    def _launch_planned(self, stream: _StreamState) -> None:
        """Start executing every newly *sealed* batch's numerics.

        Only the executed prefix of a fault- or preempt-cut batch runs —
        interrupted jobs never touch the numerics pool (they requeue and
        execute, bit-exact, on a later dispatch instead).  An unsealed
        batch holds a ``None`` slot: preemption could still cut its
        suffix, so its numerics wait for the seal (``drain()`` only joins
        after ``finish()`` sealed everything).
        """
        planner = stream.planner
        while len(stream.futures) < len(planner.batches):
            stream.futures.append(None)
        for index, sealed in enumerate(planner.sealed):
            if sealed and stream.futures[index] is None:
                batch = planner.batches[index]
                stream.futures[index] = stream.pool.submit(
                    run_batch,
                    self.fleet[batch.worker_id],
                    [entry.job for entry in batch.executed],
                )

    def submit(self, job: AnyJob) -> None:
        """Feed one job into the open stream (opening it if needed).

        The simulated planner advances to ``job.arrival_cycle``, firing
        every dispatch that is final by then; those batches' numerics start
        executing on the thread pool immediately.  Submit jobs in
        ``(arrival_cycle, job_id)`` order for schedules bit-identical to
        one-shot :meth:`serve`; a job submitted late (arrival before the
        planning horizon) is queued at the horizon instead.

        >>> import numpy as np
        >>> from repro import AxonAccelerator, ArrayConfig
        >>> from repro.serve import AsyncGemmScheduler, Job
        >>> scheduler = AsyncGemmScheduler([AxonAccelerator(ArrayConfig(8, 8))])
        >>> scheduler.submit(Job(job_id="j0", tenant="t",
        ...                      a=np.eye(8), b=np.eye(8)))
        >>> report, (result,) = scheduler.drain()
        >>> result.status, report.jobs_completed
        ('completed', 1)
        """
        with self._lock:
            stream = self._open_stream()
            stream.planner.offer(job)
            self._launch_planned(stream)

    def cancel(self, job_id: str) -> bool:
        """Cancel a submitted job that has not started executing.

        Thread-safe: may be called from any thread while a ``submit()``
        stream is open.  Returns True when the job was still queued (or
        awaiting a fault retry) and is now resolved as ``cancelled`` —
        its :class:`JobResult` appears in the drained report.  Returns
        False when there is no open stream, the job is unknown, or it
        already executed (results are never revoked).

        >>> import numpy as np
        >>> from repro import AxonAccelerator, ArrayConfig
        >>> from repro.serve import AsyncGemmScheduler, Job
        >>> scheduler = AsyncGemmScheduler([AxonAccelerator(ArrayConfig(8, 8))])
        >>> scheduler.submit(Job(job_id="j0", tenant="t",
        ...                      a=np.eye(8), b=np.eye(8), arrival_cycle=0))
        >>> scheduler.submit(Job(job_id="j1", tenant="t",
        ...                      a=np.eye(8), b=np.eye(8), arrival_cycle=1))
        >>> scheduler.cancel("j1")
        True
        >>> report, results = scheduler.drain()
        >>> [(r.job_id, r.status) for r in results]
        [('j0', 'completed'), ('j1', 'cancelled')]
        """
        with self._lock:
            stream = self._stream
            if stream is None:
                return False
            return stream.planner.cancel(job_id)

    def drain(self) -> tuple[ServeReport, list[JobResult]]:
        """Close the stream: flush the planner, await every batch, report.

        Batching windows still close on their cycle deadlines — the
        simulated clock does not know the stream ended.  Returns the same
        ``(ServeReport, [JobResult])`` pair as :meth:`serve`; the scheduler
        is immediately reusable for a new stream (or ``serve()`` call)
        afterwards.  Draining an unopened stream returns an empty report.
        """
        with self._lock:
            # Pop the stream atomically; once detached it belongs to this
            # call alone, so the flush/await below can run off-lock.
            stream = self._stream
            self._stream = None
        if stream is None:
            # Nothing was submitted: report an empty run without spinning
            # up (and immediately tearing down) an executor pool.
            planner = _OnlinePlanner(self)
            groups_before = estimate_cache_group_info()
            cache_before = estimate_cache_info()
            disk_before = estimate_cache_disk_info()
            batches, terminal, ledgers = planner.finish()
            return self._assemble(
                batches,
                terminal,
                ledgers,
                [],
                tenants=planner.tenants,
                wall_seconds=0.0,
                cache_before=cache_before,
                groups_before=groups_before,
                disk_before=disk_before,
            )
        try:
            batches, terminal, ledgers = stream.planner.finish()
            self._launch_planned(stream)
            batch_runs = [future.result() for future in stream.futures]
        finally:
            stream.planner._restore_cache_observer()
            stream.pool.shutdown(wait=True)
        return self._assemble(
            batches,
            terminal,
            ledgers,
            batch_runs,
            tenants=stream.planner.tenants,
            wall_seconds=time.perf_counter() - stream.wall_start,
            cache_before=stream.cache_before,
            groups_before=stream.groups_before,
            disk_before=stream.disk_before,
        )

    async def drain_async(self) -> tuple[ServeReport, list[JobResult]]:
        """Async wrapper around :meth:`drain` (the wait runs off-loop)."""
        return await asyncio.get_running_loop().run_in_executor(None, self.drain)

    # -- one-shot API -------------------------------------------------------

    async def serve_async(
        self, jobs: Sequence[AnyJob]
    ) -> tuple[ServeReport, list[JobResult]]:
        """Serve a whole trace: plan on the simulated clock, execute concurrently.

        Equivalent to submitting every job in ``(arrival_cycle, job_id)``
        order and draining — the plan comes from the same online planner,
        so one-shot and streamed serving produce bit-identical schedules
        and results.  Returns the aggregate :class:`ServeReport` and one
        :class:`JobResult` per submitted job (rejected jobs included),
        sorted by ``job_id``.
        """
        with self._lock:
            stream_open = self._stream is not None
        if stream_open:
            raise RuntimeError(
                "a submit() stream is open; drain() it before calling serve()"
            )
        wall_start = time.perf_counter()
        planner = _OnlinePlanner(self)
        cache_before = estimate_cache_info()
        groups_before = estimate_cache_group_info()
        disk_before = estimate_cache_disk_info()
        try:
            for job in sorted(jobs, key=lambda job: (job.arrival_cycle, job.job_id)):
                planner.offer(job)
            batches, terminal, ledgers = planner.finish()
        finally:
            planner._restore_cache_observer()

        loop = asyncio.get_running_loop()
        pool_size = max(1, len(self.fleet))
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            futures = [
                loop.run_in_executor(
                    pool,
                    run_batch,
                    self.fleet[batch.worker_id],
                    [entry.job for entry in batch.executed],
                )
                for batch in batches
            ]
            batch_runs = await asyncio.gather(*futures)

        return self._assemble(
            batches,
            terminal,
            ledgers,
            batch_runs,
            tenants=planner.tenants,
            wall_seconds=time.perf_counter() - wall_start,
            cache_before=cache_before,
            groups_before=groups_before,
            disk_before=disk_before,
        )

    def serve(self, jobs: Sequence[AnyJob]) -> tuple[ServeReport, list[JobResult]]:
        """Synchronous wrapper around :meth:`serve_async`."""
        return asyncio.run(self.serve_async(jobs))

    # -- result assembly ----------------------------------------------------

    def _cache_class_deltas(
        self,
        before: Mapping[tuple[Hashable, ...], CacheGroupInfo] | None,
        after: Mapping[tuple[Hashable, ...], CacheGroupInfo],
    ) -> tuple[tuple[CacheClassStats, ...], int]:
        """Attribute estimate-cache traffic deltas to worker classes.

        Cache groups key on the design point of the estimate — ``(rows,
        cols, dataflow, axon, engine, grid)`` — which is the worker-class
        signature minus zero gating (gating never changes an estimate, so
        classes differing only in it share a group; the shared delta is
        attributed to the first such class in fleet order).  Returns the
        per-class stats in ``worker_classes`` order plus the run's total
        evictions across *all* groups.
        """
        tails: dict[tuple, str] = {}
        for class_id, rep in enumerate(self._class_reps):
            tail = (
                rep.config.rows,
                rep.config.cols,
                rep.dataflow,
                rep.axon,
                rep.engine,
                rep.scale_out[0],
                rep.scale_out[1],
            )
            tails.setdefault(tail, self.worker_classes[class_id])
        totals = {label: [0, 0, 0] for label in self.worker_classes}
        evictions = 0
        snapshot = dict(before or {})
        for group, info in after.items():
            prev = snapshot.get(group, CacheGroupInfo(0, 0, 0))
            delta_e = info.evictions - prev.evictions
            evictions += delta_e
            label = tails.get(tuple(group[1:]))
            if label is None:
                continue
            counters = totals[label]
            counters[0] += info.hits - prev.hits
            counters[1] += info.misses - prev.misses
            counters[2] += delta_e
        stats = tuple(
            CacheClassStats(
                worker_class=label,
                hits=totals[label][0],
                misses=totals[label][1],
                evictions=totals[label][2],
            )
            for label in self.worker_classes
        )
        return stats, evictions

    def _assemble(
        self,
        batches: list[_ScheduledBatch],
        terminal: list[JobResult],
        ledgers: dict[int, _WorkerLedger],
        batch_runs: Sequence[Sequence[RunResult]],
        *,
        tenants: set[str],
        wall_seconds: float,
        cache_before: CacheInfo,
        groups_before: Mapping[tuple[Hashable, ...], CacheGroupInfo] | None = None,
        disk_before: DiskCacheInfo | None = None,
    ) -> tuple[ServeReport, list[JobResult]]:
        tracer = self.tracer
        results = list(terminal)
        for batch, runs in zip(batches, batch_runs):
            cursor = batch.start_cycle
            worker_class = self.worker_class(batch.worker_id)
            for entry, planned, stretched, run in zip(
                batch.executed, batch.job_cycles, batch.service_cycles, runs
            ):
                if run.cycles != planned:
                    raise RuntimeError(
                        f"scheduler accounting drift on job "
                        f"{entry.job.job_id!r}: planned {planned} cycles but "
                        f"execution reported {run.cycles}"
                    )
                # Job-kind post-processing: conv jobs fold the flat GEMM
                # result into their OFMAP and attach im2col traffic, so the
                # JobResult matches a direct run_conv call bit-for-bit.
                run = entry.job.finalize_result(run, self.fleet[batch.worker_id])
                start = cursor
                # Occupancy advances by the slowdown-stretched service;
                # the RunResult keeps the healthy tile-exact cycles (a
                # straggler delays work, it does not change what ran).
                cursor += stretched
                job_result = JobResult(
                    job_id=entry.job.job_id,
                    tenant=entry.job.tenant,
                    name=entry.job.name,
                    status=STATUS_COMPLETED,
                    priced_cycles=entry.priced_cycles,
                    arrival_cycle=entry.job.arrival_cycle,
                    result=run,
                    start_cycle=start,
                    finish_cycle=cursor,
                    worker_id=batch.worker_id,
                    worker_class=worker_class,
                    batch_id=batch.batch_id,
                    batch_size=len(batch.entries),
                    deadline_hint_cycles=entry.job.deadline_hint_cycles,
                    deprioritized=entry.deprioritized,
                    attempts=entry.attempts + 1,
                    preemptions=entry.preemptions,
                    slo=self.tenant_slo(entry.job.tenant),
                )
                results.append(job_result)
                if tracer is not None:
                    # Completion events ride the hosting worker's track;
                    # _assemble iterates batches in dispatch order, so the
                    # emission order is as deterministic as the schedule.
                    pid, tid = self._track[batch.worker_id]
                    for event in job_result.trace_events(pid=pid, tid=tid):
                        tracer.emit(event)

        cache_after = estimate_cache_info()
        cache_class_stats, cache_evictions = self._cache_class_deltas(
            groups_before, estimate_cache_group_info()
        )
        disk_after = estimate_cache_disk_info()
        if disk_before is None:
            disk_before = DiskCacheInfo(0, 0, 0, 0, 0, 0, None)
        # skipped + stale journal lines surface as one "skips" counter:
        # both mean a record the loader refused to serve during this run.
        disk_skips_delta = (disk_after.skipped + disk_after.stale) - (
            disk_before.skipped + disk_before.stale
        )
        makespan = max((batch.end_cycle for batch in batches), default=0)
        worker_stats = [
            WorkerStats(
                worker_id=ledger.worker_id,
                jobs=ledger.jobs,
                batches=ledger.batches,
                busy_cycles=ledger.busy_cycles,
                utilization=ledger.busy_cycles / makespan if makespan else 0.0,
                worker_class=self.worker_class(ledger.worker_id),
                failures=ledger.failures,
                # A worker is reported dead once its scripted death falls
                # inside the run, whether or not a batch was cut by it.
                alive=ledger.alive
                and (
                    self.fault_injector is None
                    or self.fault_injector.alive(ledger.worker_id, makespan)
                ),
            )
            for ledger in ledgers.values()
        ]
        report = compile_serve_report(
            results,
            workers=worker_stats,
            budgets={tenant: self.budgets.get(tenant) for tenant in tenants},
            max_batch=self.max_batch,
            clock_hz=self.clock_hz,
            wall_seconds=wall_seconds,
            cache_hits=cache_after.hits - cache_before.hits,
            cache_misses=cache_after.misses - cache_before.misses,
            cache_evictions=cache_evictions,
            cache_class_stats=cache_class_stats,
            cache_disk_hits=disk_after.hits - disk_before.hits,
            cache_disk_misses=disk_after.misses - disk_before.misses,
            cache_disk_skips=max(0, disk_skips_delta),
            fleet=self.fleet_description,
            batch_window_cycles=self.batch_window_cycles,
            placement=self.placement,
            enforce_deadlines=self.enforce_deadlines,
            max_retries=self.max_retries,
            ordering=self.ordering,
            max_preemptions=self.max_preemptions,
            faults=(
                self.fault_plan.spec()
                if self.fault_plan is not None and self.fault_plan.faults
                else None
            ),
        )
        results.sort(key=lambda item: item.job_id)
        return report, results


def serial_baseline(
    fleet_worker: _AcceleratorBase,
    jobs: Sequence[AnyJob],
    *,
    clock_hz: float = DEFAULT_CLOCK_HZ,
) -> tuple[ServeReport, list[JobResult]]:
    """Naive serial dispatch: one worker, no batching, strict arrival order.

    The reference point the batched async scheduler is benchmarked against
    (``benchmarks/bench_serve_throughput.py``): every job runs alone, in
    arrival order, on a single accelerator.
    """
    scheduler = AsyncGemmScheduler(
        [fleet_worker], max_batch=1, clock_hz=clock_hz
    )
    return scheduler.serve(jobs)

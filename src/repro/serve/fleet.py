"""Fleet configuration for the serving layer, heterogeneous fleets included.

The scheduler (:class:`repro.serve.scheduler.AsyncGemmScheduler`) takes a
plain list of accelerator instances and groups them into *worker classes*
by configuration.  This module owns the declarative side: a
:class:`WorkerSpec` describes one group of identical workers (how many, the
array geometry, the architecture, the Eq. 3 scale-out grid),
:func:`parse_fleet_spec` reads the compact ``repro serve --fleet`` spec
grammar, and :func:`build_fleet` instantiates the accelerators.

The spec grammar is a comma-separated list of worker groups::

    [COUNT*][ARCH:]ROWSxCOLS[@PRxPC]

* ``COUNT`` — workers in the group (default 1);
* ``ARCH`` — ``axon`` or ``systolic`` (default: the ``default_arch``
  argument, ``axon``);
* ``ROWSxCOLS`` — the array geometry;
* ``@PRxPC`` — an optional Eq. 3 scale-out grid per worker.

Examples
--------
>>> parse_fleet_spec("2*32x32,16x16@2x2")
(WorkerSpec(rows=32, cols=32, count=2, arch='axon', scale_out=(1, 1)),\
 WorkerSpec(rows=16, cols=16, count=1, arch='axon', scale_out=(2, 2)))
>>> fleet = build_fleet(parse_fleet_spec("2*32x32,systolic:16x16@2x2"))
>>> [worker.describe() for worker in fleet]
['axon-32x32-OS-wavefront', 'axon-32x32-OS-wavefront', \
'systolic-16x16-OS-wavefront-2x2']
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from repro.api import AxonAccelerator, SystolicAccelerator
from repro.arch.array_config import ArrayConfig
from repro.arch.dataflow import Dataflow
from repro.engine import DEFAULT_ENGINE

#: Architectures a worker group may name.
FLEET_ARCHS = ("axon", "systolic")

_GROUP_PATTERN = re.compile(
    r"^(?:(?P<count>\d+)\*)?"
    r"(?:(?P<arch>[a-zA-Z]+):)?"
    r"(?P<rows>\d+)x(?P<cols>\d+)"
    r"(?:@(?P<p_r>\d+)x(?P<p_c>\d+))?$"
)


@dataclass(frozen=True)
class WorkerSpec:
    """One group of identically configured workers in a fleet.

    >>> WorkerSpec(rows=32, cols=32, count=4).label()
    '4*axon:32x32'
    >>> WorkerSpec(rows=16, cols=16, arch="systolic", scale_out=(2, 2)).label()
    'systolic:16x16@2x2'
    """

    rows: int
    cols: int
    count: int = 1
    arch: str = "axon"
    scale_out: tuple[int, int] = (1, 1)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"worker count must be >= 1, got {self.count}")
        if self.rows < 1 or self.cols < 1:
            raise ValueError(
                f"array geometry must be positive, got {self.rows}x{self.cols}"
            )
        if self.arch not in FLEET_ARCHS:
            raise ValueError(
                f"unknown arch {self.arch!r}; expected one of "
                f"{', '.join(FLEET_ARCHS)}"
            )
        if self.scale_out[0] < 1 or self.scale_out[1] < 1:
            raise ValueError(
                f"scale-out grid must be positive, got {self.scale_out!r}"
            )

    def label(self) -> str:
        """The group back in spec-grammar form (round-trips the parser)."""
        text = f"{self.arch}:{self.rows}x{self.cols}"
        if self.count != 1:
            text = f"{self.count}*{text}"
        if self.scale_out != (1, 1):
            text += "@{}x{}".format(*self.scale_out)
        return text


def parse_fleet_spec(
    text: str, default_arch: str = "axon"
) -> tuple[WorkerSpec, ...]:
    """Parse a ``--fleet`` spec string into :class:`WorkerSpec` groups.

    See the module docstring for the grammar.  Raises :class:`ValueError`
    on malformed groups, naming the offending fragment.

    >>> parse_fleet_spec("48x48", default_arch="systolic")
    (WorkerSpec(rows=48, cols=48, count=1, arch='systolic', scale_out=(1, 1)),)
    """
    groups = [fragment.strip() for fragment in text.split(",") if fragment.strip()]
    if not groups:
        raise ValueError(f"empty fleet spec {text!r}")
    specs = []
    for fragment in groups:
        match = _GROUP_PATTERN.match(fragment)
        if match is None:
            raise ValueError(
                f"malformed fleet group {fragment!r}; expected "
                f"[COUNT*][ARCH:]ROWSxCOLS[@PRxPC], e.g. '2*axon:32x32@2x2'"
            )
        p_r, p_c = match.group("p_r"), match.group("p_c")
        specs.append(
            WorkerSpec(
                rows=int(match.group("rows")),
                cols=int(match.group("cols")),
                count=int(match.group("count") or 1),
                arch=(match.group("arch") or default_arch).lower(),
                scale_out=(int(p_r), int(p_c)) if p_r else (1, 1),
            )
        )
    return tuple(specs)


def worker_signature(accelerator) -> tuple:
    """The configuration tuple two workers must share to run jobs identically.

    Covers everything that can change a cycle count or an output: array
    geometry, dataflow, architecture (axon vs systolic), zero gating,
    engine and scale-out grid.

    >>> fleet = build_fleet([WorkerSpec(rows=8, cols=8, count=2)])
    >>> worker_signature(fleet[0]) == worker_signature(fleet[1])
    True
    """
    return (
        accelerator.config.rows,
        accelerator.config.cols,
        accelerator.dataflow,
        accelerator.axon,
        accelerator.zero_gating,
        accelerator.engine,
        accelerator.scale_out,
    )


@dataclass(frozen=True)
class FleetClasses:
    """A concrete fleet grouped into worker classes.

    ``class_reps`` holds one representative accelerator per class (first
    of its class in fleet order) — pricing and planning against the
    representative is valid for every member, since identically
    configured workers run any job identically.  ``worker_class_ids``
    maps each fleet position to its class index and ``labels`` carries
    each class's :meth:`repro.api._AcceleratorBase.describe` string.

    >>> fleet = build_fleet(parse_fleet_spec("2*8x8,systolic:8x8"))
    >>> classes = group_worker_classes(fleet)
    >>> classes.worker_class_ids, len(classes.class_reps)
    ((0, 0, 1), 2)
    """

    class_reps: tuple
    worker_class_ids: tuple[int, ...]
    labels: tuple[str, ...]


def group_worker_classes(fleet: Sequence) -> FleetClasses:
    """Group a fleet into worker classes by configuration signature.

    Workers with identical :func:`worker_signature` tuples share a class;
    classes are numbered by first appearance in fleet order, which keeps
    the grouping deterministic for a given fleet list.
    """
    signatures: list[tuple] = []
    class_reps: list = []
    worker_class_ids: list[int] = []
    for worker in fleet:
        signature = worker_signature(worker)
        try:
            index = signatures.index(signature)
        except ValueError:
            index = len(signatures)
            signatures.append(signature)
            class_reps.append(worker)
        worker_class_ids.append(index)
    return FleetClasses(
        class_reps=tuple(class_reps),
        worker_class_ids=tuple(worker_class_ids),
        labels=tuple(rep.describe() for rep in class_reps),
    )


def build_fleet(
    specs: Sequence[WorkerSpec],
    *,
    dataflow: Dataflow = Dataflow.OUTPUT_STATIONARY,
    engine: str = DEFAULT_ENGINE,
    zero_gating: bool = False,
) -> list:
    """Instantiate the accelerators a fleet spec describes, in spec order.

    ``dataflow``, ``engine`` and ``zero_gating`` apply fleet-wide
    (``zero_gating`` only affects Axon workers — the conventional array
    never gates).  The returned list goes straight into
    :class:`repro.serve.scheduler.AsyncGemmScheduler`.

    >>> fleet = build_fleet([WorkerSpec(rows=8, cols=8, count=2)])
    >>> len(fleet), fleet[0].config.rows
    (2, 8)
    """
    fleet = []
    for spec in specs:
        config = ArrayConfig(spec.rows, spec.cols)
        grid = None if spec.scale_out == (1, 1) else spec.scale_out
        for _ in range(spec.count):
            if spec.arch == "axon":
                fleet.append(
                    AxonAccelerator(
                        config,
                        dataflow,
                        zero_gating=zero_gating,
                        engine=engine,
                        scale_out=grid,
                    )
                )
            else:
                fleet.append(
                    SystolicAccelerator(
                        config, dataflow, engine=engine, scale_out=grid
                    )
                )
    return fleet

"""Deterministic fault model for the serving fleet.

Fault tolerance is only testable when failures are reproducible, so the
chaos layer is expressed entirely on the **simulated clock**: a
:class:`FaultPlan` is a set of per-worker :class:`WorkerFault` events
(permanent death, transient outage, slowdown multiplier) pinned to
simulated cycles, and a :class:`FaultInjector` answers the scheduler's
questions about them — is this worker alive at cycle ``T``, when is its
next failure after a dispatch at ``T``, how much does it stretch service.
Nothing in this module reads wall-clock time or an unseeded RNG
(:func:`random_fault_plan` draws from a seeded
``numpy.random.Generator``), so a fault plan perturbs a serving run the
same way on every machine and every rerun — reprolint's RPL102 rule runs
in *strict* mode over this file to keep it that way.

Fault kinds
-----------

* ``permanent`` — the worker dies at ``at_cycle`` and never returns.  A
  batch in flight is cut at the death cycle; its unexecuted jobs requeue
  and the placement policy stops considering the worker.
* ``transient`` — the worker is down for ``down_cycles`` starting at
  ``at_cycle``, then recovers.  In-flight work is cut and requeued the
  same way; dispatches during the outage window start after it ends.
* ``slowdown`` — from ``at_cycle`` on, service on the worker is
  stretched by ``factor`` (a straggler).  Slowdowns change *when* work
  finishes, never *what* it computes — results stay bit-exact.

Fault specs use the same compact grammar style as fleet specs
(:func:`repro.serve.fleet.parse_fleet_spec`):
``WORKER:KIND@CYCLE[+DOWN][xFACTOR]``, comma-separated.

>>> plan = parse_fault_spec("0:perm@5000,1:transient@3000+2000,2:slow@0x1.5")
>>> [fault.kind for fault in plan.faults]
['permanent', 'transient', 'slowdown']
>>> injector = FaultInjector(plan, fleet_size=4)
>>> injector.alive(0, 4999), injector.alive(0, 5000)
(True, False)
>>> injector.unavailable_until(1, 3500)
5000
>>> injector.stretch(2, cycle=10, cycles=100)
150
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.obs.tracer import Tracer

#: The fault kinds a :class:`WorkerFault` may carry.
FAULT_TRANSIENT = "transient"
FAULT_PERMANENT = "permanent"
FAULT_SLOWDOWN = "slowdown"
FAULT_KINDS = (FAULT_TRANSIENT, FAULT_PERMANENT, FAULT_SLOWDOWN)

_KIND_ALIASES = {
    "transient": FAULT_TRANSIENT,
    "fail": FAULT_TRANSIENT,
    "perm": FAULT_PERMANENT,
    "permanent": FAULT_PERMANENT,
    "slow": FAULT_SLOWDOWN,
    "slowdown": FAULT_SLOWDOWN,
}

_FRAGMENT = re.compile(
    r"^(?P<worker>\d+):(?P<kind>[a-z]+)@(?P<cycle>\d+)"
    r"(?:\+(?P<down>\d+))?(?:x(?P<factor>\d+(?:\.\d+)?))?$"
)


@dataclass(frozen=True)
class WorkerFault:
    """One scripted fault on one fleet member.

    ``at_cycle`` is the simulated instant the fault strikes.  Transient
    faults carry ``down_cycles`` (the outage length); slowdowns carry
    ``factor`` (> 1, the service-time multiplier from ``at_cycle`` on).

    >>> WorkerFault(worker_id=1, kind="transient", at_cycle=100,
    ...             down_cycles=50).spec_fragment()
    '1:transient@100+50'
    """

    worker_id: int
    kind: str
    at_cycle: int
    down_cycles: int = 0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.worker_id < 0:
            raise ValueError(f"fault worker_id must be >= 0, got {self.worker_id}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}"
            )
        if self.at_cycle < 0:
            raise ValueError(f"fault at_cycle must be >= 0, got {self.at_cycle}")
        if self.kind == FAULT_TRANSIENT:
            if self.down_cycles <= 0:
                raise ValueError(
                    f"transient fault needs down_cycles > 0, got {self.down_cycles}"
                )
        elif self.down_cycles != 0:
            raise ValueError(f"{self.kind} fault cannot carry down_cycles")
        if self.kind == FAULT_SLOWDOWN:
            if self.factor <= 1.0:
                raise ValueError(
                    f"slowdown factor must be > 1, got {self.factor}"
                )
        elif self.factor != 1.0:
            raise ValueError(f"{self.kind} fault cannot carry a factor")

    def spec_fragment(self) -> str:
        """The ``WORKER:KIND@CYCLE[+DOWN][xFACTOR]`` spec for this fault."""
        text = f"{self.worker_id}:{self.kind}@{self.at_cycle}"
        if self.kind == FAULT_TRANSIENT:
            text += f"+{self.down_cycles}"
        elif self.kind == FAULT_SLOWDOWN:
            text += f"x{self.factor:g}"
        return text


@dataclass(frozen=True)
class FailureEvent:
    """One upcoming execution-breaking event on a worker.

    ``resume_cycle`` is when the worker returns to service (None for a
    permanent death).
    """

    cycle: int
    kind: str
    resume_cycle: int | None


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, scripted set of fleet faults (sorted, validated).

    >>> plan = FaultPlan((WorkerFault(0, "permanent", 500),))
    >>> plan.spec()
    '0:permanent@500'
    >>> parse_fault_spec(plan.spec()) == plan
    True
    """

    faults: tuple[WorkerFault, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.faults,
                key=lambda f: (f.worker_id, f.at_cycle, f.kind),
            )
        )
        object.__setattr__(self, "faults", ordered)

    def for_worker(self, worker_id: int) -> tuple[WorkerFault, ...]:
        """This worker's faults, in ``at_cycle`` order."""
        return tuple(f for f in self.faults if f.worker_id == worker_id)

    def max_worker_id(self) -> int:
        """Largest worker id any fault names (-1 for an empty plan)."""
        return max((f.worker_id for f in self.faults), default=-1)

    def spec(self) -> str:
        """The comma-separated spec string this plan round-trips through."""
        return ",".join(f.spec_fragment() for f in self.faults)


def parse_fault_spec(text: str) -> FaultPlan:
    """Parse a ``WORKER:KIND@CYCLE[+DOWN][xFACTOR]`` fault-spec string.

    Comma-separated fragments; kinds accept the aliases ``perm``/
    ``permanent``, ``transient``/``fail`` and ``slow``/``slowdown``.
    Transient faults require ``+DOWN`` (outage length); slowdowns require
    ``xFACTOR`` (> 1).  A spec must name at least one fault — an empty
    string is a malformed request, not an empty plan (callers wanting no
    faults pass no plan at all).

    >>> parse_fault_spec("1:fail@200+100").faults[0].down_cycles
    100
    >>> parse_fault_spec("")
    Traceback (most recent call last):
        ...
    ValueError: empty fault spec; expected comma-separated WORKER:KIND@CYCLE[+DOWN][xFACTOR] fragments
    >>> parse_fault_spec("0:bogus@1")
    Traceback (most recent call last):
        ...
    ValueError: malformed fault fragment '0:bogus@1'; unknown kind 'bogus'
    """
    faults: list[WorkerFault] = []
    for fragment in filter(None, (part.strip() for part in text.split(","))):
        match = _FRAGMENT.match(fragment)
        if match is None:
            raise ValueError(
                f"malformed fault fragment {fragment!r}; expected "
                f"WORKER:KIND@CYCLE[+DOWN][xFACTOR], e.g. 0:perm@5000, "
                f"1:transient@3000+2000 or 2:slow@0x1.5"
            )
        kind = _KIND_ALIASES.get(match["kind"])
        if kind is None:
            raise ValueError(
                f"malformed fault fragment {fragment!r}; "
                f"unknown kind {match['kind']!r}"
            )
        down = match["down"]
        factor = match["factor"]
        if kind != FAULT_TRANSIENT and down is not None:
            raise ValueError(
                f"malformed fault fragment {fragment!r}; "
                f"only transient faults take +DOWN"
            )
        if kind != FAULT_SLOWDOWN and factor is not None:
            raise ValueError(
                f"malformed fault fragment {fragment!r}; "
                f"only slowdowns take xFACTOR"
            )
        if kind == FAULT_TRANSIENT and down is None:
            raise ValueError(
                f"malformed fault fragment {fragment!r}; "
                f"transient faults need +DOWN (outage cycles)"
            )
        if kind == FAULT_SLOWDOWN and factor is None:
            raise ValueError(
                f"malformed fault fragment {fragment!r}; "
                f"slowdowns need xFACTOR (service multiplier > 1)"
            )
        try:
            faults.append(
                WorkerFault(
                    worker_id=int(match["worker"]),
                    kind=kind,
                    at_cycle=int(match["cycle"]),
                    down_cycles=int(down) if down is not None else 0,
                    factor=float(factor) if factor is not None else 1.0,
                )
            )
        except ValueError as error:
            raise ValueError(
                f"malformed fault fragment {fragment!r}; {error}"
            ) from None
    if not faults:
        raise ValueError(
            "empty fault spec; expected comma-separated "
            "WORKER:KIND@CYCLE[+DOWN][xFACTOR] fragments"
        )
    return FaultPlan(tuple(faults))


def random_fault_plan(
    fleet_size: int,
    *,
    seed: int,
    horizon_cycles: int,
    transient_rate: float = 0.5,
    permanent_rate: float = 0.25,
    slowdown_rate: float = 0.25,
) -> FaultPlan:
    """A seeded random chaos plan for fuzz-style fault testing.

    Each worker independently draws at most one fault of each kind with
    the given probabilities; timings land uniformly inside
    ``horizon_cycles``.  Deterministic for a given seed (the RNG is a
    seeded ``numpy.random.Generator``), so a failing chaos run is
    replayable from its seed alone.

    >>> plan = random_fault_plan(4, seed=7, horizon_cycles=10_000)
    >>> plan == random_fault_plan(4, seed=7, horizon_cycles=10_000)
    True
    """
    if fleet_size < 1:
        raise ValueError(f"fleet_size must be >= 1, got {fleet_size}")
    if horizon_cycles < 1:
        raise ValueError(f"horizon_cycles must be >= 1, got {horizon_cycles}")
    rng = np.random.default_rng(seed)
    faults: list[WorkerFault] = []
    for worker_id in range(fleet_size):
        if rng.random() < transient_rate:
            at = int(rng.integers(horizon_cycles))
            down = int(rng.integers(1, max(2, horizon_cycles // 4)))
            faults.append(
                WorkerFault(worker_id, FAULT_TRANSIENT, at, down_cycles=down)
            )
        if rng.random() < slowdown_rate:
            at = int(rng.integers(horizon_cycles))
            factor = 1.0 + float(rng.uniform(0.25, 2.0))
            faults.append(WorkerFault(worker_id, FAULT_SLOWDOWN, at, factor=factor))
        if rng.random() < permanent_rate:
            at = int(rng.integers(horizon_cycles))
            faults.append(WorkerFault(worker_id, FAULT_PERMANENT, at))
    return FaultPlan(tuple(faults))


class FaultInjector:
    """Stateless oracle the scheduler consults about a :class:`FaultPlan`.

    All queries are pure functions of ``(plan, worker, cycle)`` — the
    injector keeps no mutable state, so the planner's determinism (one
    schedule per trace/fleet/plan triple) extends to faulty runs, and
    streamed vs one-shot serving stay bit-identical under faults.

    >>> plan = parse_fault_spec("0:transient@100+50")
    >>> injector = FaultInjector(plan, fleet_size=2)
    >>> event = injector.next_failure(0, start_cycle=0)
    >>> (event.cycle, event.resume_cycle)
    (100, 150)
    >>> injector.next_failure(1, start_cycle=0) is None
    True
    """

    def __init__(self, plan: FaultPlan, fleet_size: int) -> None:
        if plan.max_worker_id() >= fleet_size:
            raise ValueError(
                f"fault plan names worker {plan.max_worker_id()} but the "
                f"fleet has only {fleet_size} workers (ids 0.."
                f"{fleet_size - 1})"
            )
        self.plan = plan
        self.fleet_size = fleet_size
        self._permanent: dict[int, int] = {}
        self._transients: dict[int, tuple[WorkerFault, ...]] = {}
        self._slowdowns: dict[int, tuple[WorkerFault, ...]] = {}
        for fault in plan.faults:
            if fault.kind == FAULT_PERMANENT:
                previous = self._permanent.get(fault.worker_id)
                if previous is None or fault.at_cycle < previous:
                    self._permanent[fault.worker_id] = fault.at_cycle
            elif fault.kind == FAULT_TRANSIENT:
                self._transients[fault.worker_id] = (
                    self._transients.get(fault.worker_id, ()) + (fault,)
                )
            else:
                self._slowdowns[fault.worker_id] = (
                    self._slowdowns.get(fault.worker_id, ()) + (fault,)
                )

    def permanent_at(self, worker_id: int) -> int | None:
        """The cycle this worker dies for good, or None if it never does."""
        return self._permanent.get(worker_id)

    def alive(self, worker_id: int, cycle: int) -> bool:
        """Whether the worker has not yet permanently died at ``cycle``."""
        death = self._permanent.get(worker_id)
        return death is None or cycle < death

    def unavailable_until(self, worker_id: int, cycle: int) -> int | None:
        """End of a transient outage window covering ``cycle`` (else None)."""
        for fault in self._transients.get(worker_id, ()):
            if fault.at_cycle <= cycle < fault.at_cycle + fault.down_cycles:
                return fault.at_cycle + fault.down_cycles
        return None

    def slowdown_factor(self, worker_id: int, cycle: int) -> float:
        """Product of slowdown factors in effect on this worker at ``cycle``."""
        factor = 1.0
        for fault in self._slowdowns.get(worker_id, ()):
            if fault.at_cycle <= cycle:
                factor *= fault.factor
        return factor

    def stretch(self, worker_id: int, cycle: int, cycles: int) -> int:
        """Service cycles after applying the slowdown in effect at ``cycle``.

        The factor is sampled once at batch start (``cycle``) and applied
        to the whole batch — a straggler stretches occupancy and finish
        times, never results.
        """
        factor = self.slowdown_factor(worker_id, cycle)
        if factor == 1.0:
            return cycles
        return int(math.ceil(cycles * factor))

    def emit_plan(
        self,
        tracer: Tracer,
        track: Mapping[int, tuple[int, int]] | None = None,
    ) -> None:
        """Emit the scripted plan as ``worker.fault``/``worker.recover`` events.

        Pure simulated-clock bookkeeping (this module stays under strict
        RPL102): one instant per scripted fault at its ``at_cycle``, plus a
        recovery instant at the end of each transient outage.  ``track``
        maps worker ids to their ``(pid, tid)`` trace track; unmapped
        workers land on ``(0, worker_id)``.

        >>> from repro.obs.tracer import Tracer
        >>> injector = FaultInjector(
        ...     parse_fault_spec("0:transient@100+50"), fleet_size=1)
        >>> tracer = Tracer()
        >>> injector.emit_plan(tracer)
        >>> [(e.name, e.cycle) for e in tracer.events]
        [('worker.fault', 100), ('worker.recover', 150)]
        """
        tracks = dict(track or {})
        for fault in self.plan.faults:
            pid, tid = tracks.get(fault.worker_id, (0, fault.worker_id))
            args: dict[str, object] = {
                "worker_id": fault.worker_id,
                "kind": fault.kind,
            }
            if fault.kind == FAULT_TRANSIENT:
                args["down_cycles"] = fault.down_cycles
            elif fault.kind == FAULT_SLOWDOWN:
                args["factor"] = fault.factor
            tracer.instant("worker.fault", fault.at_cycle, pid=pid, tid=tid, **args)
            if fault.kind == FAULT_TRANSIENT:
                tracer.instant(
                    "worker.recover",
                    fault.at_cycle + fault.down_cycles,
                    pid=pid,
                    tid=tid,
                    worker_id=fault.worker_id,
                )

    def next_failure(self, worker_id: int, start_cycle: int) -> FailureEvent | None:
        """The earliest execution-breaking fault at or after ``start_cycle``.

        Dispatches consult this to cut batches: a batch started at
        ``start_cycle`` whose finish would overrun the returned event's
        ``cycle`` loses its unexecuted suffix to a requeue.  Permanent
        deaths dominate transients striking on the same cycle.
        """
        best: tuple[int, int] | None = None
        event: FailureEvent | None = None
        death = self._permanent.get(worker_id)
        if death is not None and death >= start_cycle:
            best = (death, 0)
            event = FailureEvent(cycle=death, kind=FAULT_PERMANENT, resume_cycle=None)
        for fault in self._transients.get(worker_id, ()):
            if fault.at_cycle < start_cycle:
                continue
            if death is not None and fault.at_cycle >= death:
                continue  # the worker is already dead by then
            candidate = (fault.at_cycle, 1)
            if best is None or candidate < best:
                best = candidate
                event = FailureEvent(
                    cycle=fault.at_cycle,
                    kind=FAULT_TRANSIENT,
                    resume_cycle=fault.at_cycle + fault.down_cycles,
                )
        return event


__all__ = [
    "FAULT_KINDS",
    "FAULT_PERMANENT",
    "FAULT_SLOWDOWN",
    "FAULT_TRANSIENT",
    "FailureEvent",
    "FaultInjector",
    "FaultPlan",
    "WorkerFault",
    "parse_fault_spec",
    "random_fault_plan",
]

"""Per-tenant FIFO queues, weighted-fair dequeue and priced admission.

Two policies live here, deliberately separated from the dispatcher:

* :class:`AdmissionController` — prices every incoming job through the
  shared estimate cache (:func:`repro.engine.cache.cached_gemm_cycles`, via
  the pricer callable the scheduler provides) and holds each tenant to an
  optional cycle budget.  Over-budget tenants are either rejected outright
  or *deprioritized* — their jobs drop to a background backlog that only
  runs when every in-budget queue is empty.
* :class:`WeightedFairQueue` — per-tenant FIFO queues drained by
  start-time-fair virtual-time scheduling (stride scheduling): each tenant
  accrues virtual time at ``priced_cycles / weight`` per served job, and
  the non-empty tenant with the smallest virtual time is served next, so a
  tenant with weight 2 receives twice the service cycles of a tenant with
  weight 1 under backlog, and no tenant is ever starved.

Within a tenant the queue is FIFO except for the job ``priority`` field:
higher-priority jobs of the *same* tenant are served first (cross-tenant
ordering always stays with the fair scheduler, so priorities cannot be used
to steal another tenant's share).

Deadline-aware orderings (``ordering="edf"`` / ``"least-laxity"``) layer a
*deadline pool* on top: jobs from latency-target tenants that carry a
deadline hint are pulled out of the fair rotation and served strictly
first, ordered by absolute deadline (EDF) or by laxity — ``deadline - now
- priced_cycles``, re-evaluated at each dequeue on the simulated clock.
Best-effort tenants (and unhinted latency-target jobs) keep weighted-fair
sharing among themselves, so deadline ordering never reshuffles the
best-effort service order.  Pool dequeues still charge the owning tenant's
virtual time, so a latency-target tenant's deadline-served cycles count
against its fair share wherever it also competes in the fair rotation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.obs.tracer import Tracer
from repro.serve.job import SLO_LATENCY_TARGET, AnyJob

#: Admission policies for over-budget tenants.
POLICY_REJECT = "reject"
POLICY_DEPRIORITIZE = "deprioritize"
ADMISSION_POLICIES = (POLICY_REJECT, POLICY_DEPRIORITIZE)

#: Queue orderings.  ``fair`` is pure weighted-fair stride scheduling;
#: ``edf`` serves hinted latency-target jobs earliest-absolute-deadline
#: first; ``least-laxity`` serves them by remaining slack
#: (``deadline - now - priced_cycles``) instead.
ORDERING_FAIR = "fair"
ORDERING_EDF = "edf"
ORDERING_LEAST_LAXITY = "least-laxity"
ORDERINGS = (ORDERING_FAIR, ORDERING_EDF, ORDERING_LEAST_LAXITY)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of pricing one job against its tenant's budget."""

    admitted: bool
    deprioritized: bool
    priced_cycles: int


@dataclass
class TenantAdmissionStats:
    """Running admission accounting for one tenant."""

    admitted: int = 0
    deprioritized: int = 0
    rejected: int = 0
    priced_cycles: int = 0
    budget_cycles: int | None = None


class AdmissionController:
    """Estimate-cache-backed admission: price first, then run (or not).

    ``pricer`` maps a job to its estimated cycles — the scheduler wires it
    to the fleet's ``estimate_gemm_cycles``, so every admission decision is
    a (usually cache-hit) lookup in the shared estimate memo rather than an
    execution.  ``budgets`` maps tenants to total priced-cycle allowances;
    tenants absent from the mapping are unmetered.
    """

    def __init__(
        self,
        pricer: Callable[[AnyJob], int],
        budgets: Mapping[str, int] | None = None,
        policy: str = POLICY_DEPRIORITIZE,
        *,
        tracer: Tracer | None = None,
    ) -> None:
        if policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; "
                f"expected one of {', '.join(ADMISSION_POLICIES)}"
            )
        self._pricer = pricer
        self._budgets = dict(budgets or {})
        self.policy = policy
        self._tracer = tracer
        self._stats: dict[str, TenantAdmissionStats] = {}

    def _tenant_stats(self, tenant: str) -> TenantAdmissionStats:
        if tenant not in self._stats:
            self._stats[tenant] = TenantAdmissionStats(
                budget_cycles=self._budgets.get(tenant)
            )
        return self._stats[tenant]

    def admit(self, job: AnyJob, *, cycle: int = 0) -> AdmissionDecision:
        """Price ``job`` and decide whether (and how) it may run.

        Admitted jobs — deprioritized ones included, since they do
        eventually execute — accrue against the tenant's budget; rejected
        jobs do not.  ``cycle`` is the simulated instant of the decision;
        with a tracer attached it timestamps the ``job.priced`` event.
        """
        cost = int(self._pricer(job))
        stats = self._tenant_stats(job.tenant)
        budget = stats.budget_cycles
        over_budget = budget is not None and stats.priced_cycles + cost > budget
        if over_budget and self.policy == POLICY_REJECT:
            stats.rejected += 1
            decision = AdmissionDecision(False, False, cost)
        else:
            stats.admitted += 1
            stats.priced_cycles += cost
            if over_budget:
                stats.deprioritized += 1
                decision = AdmissionDecision(True, True, cost)
            else:
                decision = AdmissionDecision(True, False, cost)
        if self._tracer is not None:
            self._tracer.instant(
                "job.priced",
                cycle,
                job_id=job.job_id,
                tenant=job.tenant,
                priced_cycles=cost,
                admitted=decision.admitted,
                deprioritized=decision.deprioritized,
            )
        return decision

    def stats(self) -> dict[str, TenantAdmissionStats]:
        """Per-tenant admission accounting (live references)."""
        return dict(self._stats)


@dataclass(frozen=True)
class QueuedJob:
    """A job waiting in the fair queue, with its admission pricing.

    ``enqueued_cycle`` is the simulated instant the job entered the queue —
    its arrival cycle, the stream planner's horizon for jobs submitted
    late (:meth:`repro.serve.scheduler.AsyncGemmScheduler.submit`), or the
    failure cycle for a job requeued after a worker fault.  The batching
    window measures its deadline from this instant.  ``attempts`` counts
    dispatches that already failed under a fault plan (0 for a job that
    has never been dispatched); ``preemptions`` counts how many times the
    job was cut out of a not-yet-executed batch by a tighter-deadline
    arrival — preemption is not a retry, so the two never mix.
    """

    job: AnyJob
    priced_cycles: int
    deprioritized: bool = False
    enqueued_cycle: int = 0
    attempts: int = 0
    preemptions: int = 0

    @property
    def deadline_cycle(self) -> int | None:
        """Absolute deadline on the simulated clock (None without a hint)."""
        hint = self.job.deadline_hint_cycles
        if hint is None:
            return None
        return self.job.arrival_cycle + hint

    def laxity(self, now: int) -> int | None:
        """Remaining slack at ``now``: deadline minus now minus priced work."""
        deadline = self.deadline_cycle
        if deadline is None:
            return None
        return deadline - now - self.priced_cycles


@dataclass
class _TenantQueue:
    """One tenant's FIFO backlog plus its fair-share bookkeeping."""

    name: str
    weight: float
    jobs: deque[QueuedJob] = field(default_factory=deque)
    virtual_time: float = 0.0

    def push(self, entry: QueuedJob) -> None:
        """Append FIFO, but let higher-priority jobs of this tenant jump."""
        if entry.job.priority == 0 or not self.jobs:
            self.jobs.append(entry)
            return
        items = list(self.jobs)
        position = len(items)
        while position > 0 and items[position - 1].job.priority < entry.job.priority:
            position -= 1
        items.insert(position, entry)
        self.jobs = deque(items)

    def charge(self, priced_cycles: int) -> None:
        self.virtual_time += priced_cycles / self.weight


class WeightedFairQueue:
    """Weighted-fair multi-tenant queue with a deprioritized backlog.

    ``weights`` fixes each tenant's fair share (default 1.0; tenants appear
    lazily on first push).  Deprioritized jobs, regardless of tenant, go to
    a global FIFO backlog that is only served — and only batched from —
    once every in-budget queue is empty.

    With ``ordering="edf"`` or ``"least-laxity"``, jobs from tenants
    ``slo_classes`` marks latency-target that carry a deadline hint enter a
    *deadline pool* instead of their tenant's FIFO.  The pool is served
    with strict priority over the fair rotation, ordered by absolute
    deadline (EDF) or by laxity at the dequeue instant (least-laxity);
    within a common ``now`` the two differ only when priced costs differ.

    >>> import numpy as np
    >>> from repro.serve.job import Job
    >>> queue = WeightedFairQueue(weights={"acme": 2.0, "bob": 1.0})
    >>> for tenant in ("acme", "bob"):
    ...     queue.push(QueuedJob(
    ...         job=Job(job_id=tenant + "-0", tenant=tenant,
    ...                 a=np.eye(4), b=np.eye(4)),
    ...         priced_cycles=100))
    >>> len(queue)
    2
    >>> [entry.job.tenant for entry in queue.next_batch()]
    ['acme']

    EDF pulls a hinted latency-target job ahead of the fair rotation:

    >>> edf = WeightedFairQueue(
    ...     ordering=ORDERING_EDF, slo_classes={"rt": "latency-target"})
    >>> edf.push(QueuedJob(
    ...     job=Job(job_id="be-0", tenant="bulk", a=np.eye(4), b=np.eye(4)),
    ...     priced_cycles=100))
    >>> edf.push(QueuedJob(
    ...     job=Job(job_id="rt-0", tenant="rt", a=np.eye(4), b=np.eye(4),
    ...             deadline_hint_cycles=500),
    ...     priced_cycles=100))
    >>> [entry.job.job_id for entry in edf.next_batch(max_batch=2)]
    ['rt-0', 'be-0']
    """

    def __init__(
        self,
        weights: Mapping[str, float] | None = None,
        *,
        ordering: str = ORDERING_FAIR,
        slo_classes: Mapping[str, str] | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; "
                f"expected one of {', '.join(ORDERINGS)}"
            )
        self._weights = dict(weights or {})
        for tenant, weight in self._weights.items():
            if weight <= 0:
                raise ValueError(f"tenant {tenant!r} weight must be > 0, got {weight}")
        self.ordering = ordering
        self._slo_classes = dict(slo_classes or {})
        self._tenants: dict[str, _TenantQueue] = {}
        self._backlog: deque[QueuedJob] = deque()
        self._deadline_pool: list[QueuedJob] = []
        self._virtual_clock = 0.0
        self._queued_priced_cycles = 0
        self._tracer = tracer

    def _tenant(self, name: str) -> _TenantQueue:
        queue = self._tenants.get(name)
        if queue is None:
            queue = _TenantQueue(name=name, weight=self._weights.get(name, 1.0))
            self._tenants[name] = queue
        return queue

    def _pool_eligible(self, entry: QueuedJob) -> bool:
        """Whether an entry is served from the deadline pool.

        Only hinted jobs of latency-target tenants qualify, and only under
        a non-fair ordering; deprioritized (over-budget) work never jumps
        into the pool — blowing the admission budget forfeits deadline
        service.
        """
        return (
            self.ordering != ORDERING_FAIR
            and not entry.deprioritized
            and entry.deadline_cycle is not None
            and self._slo_classes.get(entry.job.tenant) == SLO_LATENCY_TARGET
        )

    def _pool_key(
        self, entry: QueuedJob, now: int
    ) -> tuple[int, int, int, str]:
        """Deadline-pool service order under the configured ordering.

        EDF keys on the absolute deadline; least-laxity on the remaining
        slack at ``now``.  Since every candidate shares the same ``now`` at
        a given dequeue, the two differ exactly when priced costs differ.
        Deadline, enqueue cycle and job id break ties deterministically.
        """
        deadline = entry.deadline_cycle
        assert deadline is not None  # _pool_eligible guarantees a hint
        if self.ordering == ORDERING_LEAST_LAXITY:
            laxity = entry.laxity(now)
            assert laxity is not None
            primary = laxity
        else:
            primary = deadline
        return (primary, deadline, entry.enqueued_cycle, entry.job.job_id)

    def _pool_pop(self, now: int) -> QueuedJob:
        """Remove and return the tightest pool entry, charging its tenant."""
        index = min(
            range(len(self._deadline_pool)),
            key=lambda i: self._pool_key(self._deadline_pool[i], now),
        )
        entry = self._deadline_pool.pop(index)
        # Deadline service still accrues against the tenant's fair share,
        # but never advances the global virtual clock: best-effort tenants'
        # relative order must not depend on how much pool traffic passed.
        self._tenant(entry.job.tenant).charge(entry.priced_cycles)
        return entry

    def push(self, entry: QueuedJob) -> None:
        """Enqueue an admitted job."""
        self._queued_priced_cycles += entry.priced_cycles
        if self._pool_eligible(entry):
            self._deadline_pool.append(entry)
        elif entry.deprioritized:
            self._backlog.append(entry)
        else:
            queue = self._tenant(entry.job.tenant)
            if not queue.jobs:
                # A tenant returning from idle resumes at the current virtual
                # clock instead of its stale lag, so it cannot monopolize the
                # fleet to "catch up" on time it spent offering no load.
                queue.virtual_time = max(queue.virtual_time, self._virtual_clock)
            queue.push(entry)
        if self._tracer is not None:
            self._tracer.instant(
                "job.queued",
                entry.enqueued_cycle,
                job_id=entry.job.job_id,
                tenant=entry.job.tenant,
                priced_cycles=entry.priced_cycles,
                deprioritized=entry.deprioritized,
                attempts=entry.attempts,
            )
            self._tracer.counter(
                "queue.depth", entry.enqueued_cycle, depth=len(self)
            )

    def __len__(self) -> int:
        return (
            sum(len(q.jobs) for q in self._tenants.values())
            + len(self._deadline_pool)
            + len(self._backlog)
        )

    def _active_tenants(self) -> list[_TenantQueue]:
        return [queue for queue in self._tenants.values() if queue.jobs]

    def _select_tenant(self) -> _TenantQueue | None:
        active = self._active_tenants()
        if not active:
            return None
        return min(active, key=lambda queue: (queue.virtual_time, queue.name))

    def total_priced_cycles(self) -> int:
        """Sum of priced cycles currently queued (backlog included).

        Maintained incrementally on push/dequeue so the dispatcher can
        consult it per batch without rescanning the backlog.
        """
        return self._queued_priced_cycles

    def peek_head(self, *, now: int = 0) -> QueuedJob | None:
        """The entry :meth:`next_batch` would serve next, without dequeuing.

        Follows the same selection rule — the deadline pool first (tightest
        entry at ``now``), then the non-empty in-budget tenant with the
        least virtual time, the deprioritized backlog otherwise — but
        charges nothing, so the dispatcher can inspect the head job's
        shape and queue-entry cycle (for batching-window deadlines and
        placement pricing) before committing to a dispatch.  Returns None
        on an empty queue.
        """
        if self._deadline_pool:
            return min(
                self._deadline_pool,
                key=lambda entry: self._pool_key(entry, now),
            )
        tenant = self._select_tenant()
        if tenant is not None:
            return tenant.jobs[0]
        if self._backlog:
            return self._backlog[0]
        return None

    def count_shape(self, shape: tuple[int, int, int]) -> int:
        """Queued jobs of the given GEMM shape that could share a batch now.

        An O(queue) scan the dispatcher uses to close a batching window
        early: once a full batch of the head's shape is waiting, there is
        nothing left to wait for.  Deprioritized backlog jobs only count
        when every in-budget queue is empty — :meth:`next_batch` cannot
        batch them otherwise, so counting them would close windows on
        mates the dispatch could not actually gather.
        """
        pooled = sum(
            1 for entry in self._deadline_pool if entry.job.shape == shape
        )
        active = self._active_tenants()
        if active:
            return pooled + sum(
                1
                for queue in active
                for entry in queue.jobs
                if entry.job.shape == shape
            )
        if pooled:
            return pooled
        return sum(1 for entry in self._backlog if entry.job.shape == shape)

    def remove_matching(
        self, predicate: Callable[[QueuedJob], bool]
    ) -> list[QueuedJob]:
        """Remove and return every queued entry the predicate selects.

        Used by deadline enforcement (expire every lapsed job in one
        sweep) and by stream teardown.  Removal charges no virtual time —
        the work never ran — and the order of the returned list is
        deterministic: the deadline pool first (enqueue order, then id),
        tenants in name order, FIFO within each, the deprioritized backlog
        last.
        """
        removed: list[QueuedJob] = []
        kept_pool: list[QueuedJob] = []
        for entry in sorted(
            self._deadline_pool,
            key=lambda entry: (entry.enqueued_cycle, entry.job.job_id),
        ):
            (removed if predicate(entry) else kept_pool).append(entry)
        self._deadline_pool = kept_pool
        for name in sorted(self._tenants):
            queue = self._tenants[name]
            kept: deque[QueuedJob] = deque()
            for entry in queue.jobs:
                (removed if predicate(entry) else kept).append(entry)
            queue.jobs = kept
        kept_backlog: deque[QueuedJob] = deque()
        for entry in self._backlog:
            (removed if predicate(entry) else kept_backlog).append(entry)
        self._backlog = kept_backlog
        self._queued_priced_cycles -= sum(entry.priced_cycles for entry in removed)
        return removed

    def pop_job(self, job_id: str) -> QueuedJob | None:
        """Remove one queued entry by job id (None when not queued).

        The cancellation primitive: a job that is still queued (or
        requeued after a fault) can be withdrawn; a job already inside a
        dispatched batch cannot.
        """
        removed = self.remove_matching(lambda entry: entry.job.job_id == job_id)
        return removed[0] if removed else None

    def pop_oldest(
        self, predicate: Callable[[QueuedJob], bool]
    ) -> QueuedJob | None:
        """Remove the oldest matching entry (by enqueue cycle, then id).

        The shedding victim selector: under overload the policy drops the
        longest-waiting entry of the sheddable class, which both frees
        the most-stale work and keeps the choice deterministic.
        """
        oldest: QueuedJob | None = None
        for queue in self._tenants.values():
            for entry in queue.jobs:
                if predicate(entry) and (
                    oldest is None
                    or (entry.enqueued_cycle, entry.job.job_id)
                    < (oldest.enqueued_cycle, oldest.job.job_id)
                ):
                    oldest = entry
        for entry in self._deadline_pool:
            if predicate(entry) and (
                oldest is None
                or (entry.enqueued_cycle, entry.job.job_id)
                < (oldest.enqueued_cycle, oldest.job.job_id)
            ):
                oldest = entry
        for entry in self._backlog:
            if predicate(entry) and (
                oldest is None
                or (entry.enqueued_cycle, entry.job.job_id)
                < (oldest.enqueued_cycle, oldest.job.job_id)
            ):
                oldest = entry
        if oldest is None:
            return None
        target_id = oldest.job.job_id
        removed = self.remove_matching(lambda entry: entry.job.job_id == target_id)
        return removed[0]

    def next_batch(
        self,
        max_batch: int = 1,
        cycle_budget: int | None = None,
        *,
        now: int = 0,
    ) -> list[QueuedJob]:
        """Dequeue the next head-of-line job plus same-shape batch mates.

        The head job comes from the deadline pool when one is waiting
        (tightest entry at ``now`` under the configured ordering), else
        from the tenant with the least virtual time (or the backlog when
        every in-budget queue is empty).  Up to ``max_batch - 1`` further
        jobs of the *same GEMM shape* are then pulled — pool entries first
        in deadline order, then FIFO within each tenant, tenants visited in
        ascending virtual-time order, backlog last — and every tenant is
        charged virtual time for its own jobs, so batching never distorts
        the fair shares.  ``cycle_budget`` additionally stops the batch
        once its summed priced cycles reach the budget (the head job is
        always taken), letting the dispatcher keep one worker from
        hoarding work that siblings could start sooner.
        """
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if self._deadline_pool:
            head = self._pool_pop(now)
        else:
            head_tenant = self._select_tenant()
            if head_tenant is not None:
                head = head_tenant.jobs.popleft()
                head_tenant.charge(head.priced_cycles)
                self._virtual_clock = head_tenant.virtual_time
            elif self._backlog:
                head = self._backlog.popleft()
            else:
                raise IndexError("next_batch() on an empty queue")

        batch = [head]
        shape = head.job.shape
        spent = head.priced_cycles

        def room() -> bool:
            if len(batch) >= max_batch:
                return False
            return cycle_budget is None or spent < cycle_budget

        if max_batch > 1:
            mates = [
                entry
                for entry in sorted(
                    self._deadline_pool,
                    key=lambda entry: self._pool_key(entry, now),
                )
                if entry.job.shape == shape
            ]
            for entry in mates:
                if not room():
                    break
                self._deadline_pool.remove(entry)
                self._tenant(entry.job.tenant).charge(entry.priced_cycles)
                batch.append(entry)
                spent += entry.priced_cycles
            order = sorted(
                self._active_tenants(),
                key=lambda queue: (queue.virtual_time, queue.name),
            )
            for queue in order:
                if not room():
                    break
                kept: deque[QueuedJob] = deque()
                while queue.jobs and room():
                    entry = queue.jobs.popleft()
                    if entry.job.shape == shape:
                        batch.append(entry)
                        spent += entry.priced_cycles
                        queue.charge(entry.priced_cycles)
                    else:
                        kept.append(entry)
                kept.extend(queue.jobs)
                queue.jobs = kept
            if room() and not self._active_tenants() and not self._deadline_pool:
                kept_backlog: deque[QueuedJob] = deque()
                while self._backlog and room():
                    entry = self._backlog.popleft()
                    if entry.job.shape == shape:
                        batch.append(entry)
                        spent += entry.priced_cycles
                    else:
                        kept_backlog.append(entry)
                kept_backlog.extend(self._backlog)
                self._backlog = kept_backlog
        self._queued_priced_cycles -= sum(entry.priced_cycles for entry in batch)
        return batch

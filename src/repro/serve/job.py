"""Job model of the batch-serving subsystem.

A :class:`Job` wraps one ``run_gemm`` invocation — the operands plus the
multi-tenant metadata the scheduler needs (tenant id, priority, deadline
hint, simulated arrival time).  A :class:`ConvJob` wraps one ``run_conv``
invocation: it carries the IFMAP / filter tensors, im2col-lowers them to
GEMM operands at construction, and is thereafter indistinguishable from a
GEMM job to the queues, the admission controller and the batch packer —
conv jobs are priced by their lowered GEMM shape and stack into the same
same-shape batches.  A :class:`JobResult` wraps the
:class:`repro.api.RunResult` the accelerator produced together with the
serving-side accounting: when the job arrived, started and finished on the
simulated clock, which worker and batch ran it, and what the admission
controller priced it at.

Everything here is plain data; the scheduling policy lives in
:mod:`repro.serve.queues` and :mod:`repro.serve.scheduler`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.api import RunResult, _AcceleratorBase
from repro.energy.dram_energy import dram_energy_mj
from repro.im2col.lowering import ConvShape, lower_conv_operands
from repro.im2col.software import col2im_output
from repro.obs.tracer import TraceEvent

#: Terminal outcomes recorded on a :class:`JobResult`.  ``completed`` is
#: the only status carrying a :class:`repro.api.RunResult`; the rest are
#: jobs the serving stack resolved without (fully) executing them:
#: ``rejected`` by admission, ``failed`` after exhausting retries on
#: worker faults, ``cancelled`` by a client, ``expired`` by deadline
#: enforcement, ``shed`` by the overload policy.
STATUS_COMPLETED = "completed"
STATUS_REJECTED = "rejected"
STATUS_FAILED = "failed"
STATUS_CANCELLED = "cancelled"
STATUS_EXPIRED = "expired"
STATUS_SHED = "shed"
JOB_STATUSES = (
    STATUS_COMPLETED,
    STATUS_REJECTED,
    STATUS_FAILED,
    STATUS_CANCELLED,
    STATUS_EXPIRED,
    STATUS_SHED,
)

#: Per-tenant SLO classes the overload-shedding policy distinguishes:
#: under sustained queue growth, ``best-effort`` tenants are shed before
#: ``latency-target`` tenants lose anything.
SLO_LATENCY_TARGET = "latency-target"
SLO_BEST_EFFORT = "best-effort"
SLO_CLASSES = (SLO_LATENCY_TARGET, SLO_BEST_EFFORT)


class _GemmOperandsMixin:
    """The scheduler-facing interface shared by every job kind.

    Any job exposing ``(M, K)`` / ``(K, N)`` operands as ``a`` / ``b`` —
    directly (:class:`Job`) or via lowering (:class:`ConvJob`) — gets the
    shape-derived properties the queues, the admission pricer and the batch
    packer consume, plus the default no-op result post-processing.  Keeping
    this in one place means a new scheduler-facing property is added once
    and every job kind grows it together.
    """

    a: np.ndarray
    b: np.ndarray

    @property
    def m(self) -> int:
        return self.a.shape[0]

    @property
    def k(self) -> int:
        return self.a.shape[1]

    @property
    def n(self) -> int:
        return self.b.shape[1]

    @property
    def shape(self) -> tuple[int, int, int]:
        """The ``(M, K, N)`` GEMM shape — the batching key."""
        return (self.m, self.k, self.n)

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n

    def finalize_result(
        self, run: RunResult, accelerator: _AcceleratorBase
    ) -> RunResult:
        """Post-process one executed :class:`RunResult` for this job.

        The scheduler calls this on the result of the (possibly batched)
        GEMM execution before wrapping it in a :class:`JobResult`.  Plain
        GEMM jobs pass the result through untouched; :class:`ConvJob`
        overrides it to fold the flat GEMM output back into the OFMAP and
        attach the conv traffic accounting.  Must never change ``cycles``
        (the scheduler pins executed cycles against the plan).
        """
        return run


@dataclass(frozen=True, eq=False)
class Job(_GemmOperandsMixin):
    """One GEMM awaiting execution on behalf of a tenant.

    Attributes
    ----------
    job_id:
        Unique identifier (unique across the trace; used for stable
        ordering and result lookup).
    tenant:
        Owning tenant; selects the FIFO queue and fair-share weight.
    a, b:
        The ``(M, K)`` and ``(K, N)`` operands, exactly as they would be
        passed to :meth:`repro.api._AcceleratorBase.run_gemm`.
    name:
        Workload label carried through to the :class:`RunResult`.
    priority:
        Jobs with a higher priority are served before older jobs of the
        *same tenant* (cross-tenant ordering stays with the weighted-fair
        scheduler, so one tenant's priorities cannot starve another).
    deadline_hint_cycles:
        Optional latency target relative to arrival.  Advisory by default
        (recorded as ``deadline_met`` on the result); with the
        scheduler's ``enforce_deadlines=True`` it becomes binding —
        queued jobs whose laxity has run out expire instead of wasting
        fleet cycles on work nobody is waiting for.
    arrival_cycle:
        Simulated-clock arrival time; the job is invisible to the
        scheduler before this instant.

    >>> import numpy as np
    >>> job = Job(job_id="j0", tenant="acme", a=np.ones((4, 8)), b=np.ones((8, 2)))
    >>> job.shape, job.macs
    ((4, 8, 2), 64)
    """

    job_id: str
    tenant: str
    a: np.ndarray
    b: np.ndarray
    name: str = "gemm"
    priority: int = 0
    deadline_hint_cycles: int | None = None
    arrival_cycle: int = 0

    def __post_init__(self) -> None:
        a = np.asarray(self.a, dtype=np.float64)
        b = np.asarray(self.b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(
                f"job {self.job_id!r}: operands must be 2-D with agreeing "
                f"inner dimensions, got {a.shape} x {b.shape}"
            )
        if a.shape[0] == 0 or a.shape[1] == 0 or b.shape[1] == 0:
            # Caught here, at the per-job boundary, so one tenant's
            # malformed job cannot abort a whole multi-tenant serve() run
            # deep inside planning.
            raise ValueError(
                f"job {self.job_id!r}: GEMM dimensions must be positive, "
                f"got {a.shape} x {b.shape}"
            )
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        if self.arrival_cycle < 0:
            raise ValueError(f"job {self.job_id!r}: arrival_cycle must be >= 0")


@dataclass(frozen=True, eq=False)
class ConvJob(_GemmOperandsMixin):
    """One convolution layer awaiting execution on behalf of a tenant.

    Construction im2col-lowers the tensors once
    (:func:`repro.im2col.lowering.lower_conv_operands`), so the scheduler
    sees exactly the :class:`Job` interface: ``a``/``b`` operands, the
    lowered ``shape`` as the batching key, and ``m``/``k``/``n`` for
    admission pricing ("price the conv as its lowered GEMM").  After
    execution, :meth:`finalize_result` folds the GEMM result back into the
    ``(F, P, Q)`` OFMAP and attaches the same ``dram_bytes`` /
    ``dram_energy_mj`` a direct :meth:`repro.api._AcceleratorBase.run_conv`
    call reports — the completed :class:`JobResult` is bit-exact against
    ``run_conv``.

    Attributes
    ----------
    job_id, tenant, name, priority, deadline_hint_cycles, arrival_cycle:
        As on :class:`Job`.
    ifmap:
        Input feature map ``(C, H, W)``.
    filters:
        Filter bank ``(F, C, R, S)``.
    stride, padding:
        Convolution hyper-parameters (same along both spatial axes).
    """

    job_id: str
    tenant: str
    ifmap: np.ndarray
    filters: np.ndarray
    stride: int = 1
    padding: int = 0
    name: str = "conv"
    priority: int = 0
    deadline_hint_cycles: int | None = None
    arrival_cycle: int = 0
    #: Lowered GEMM operands, computed at construction (not constructor args).
    a: np.ndarray = field(init=False, repr=False)
    b: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        ifmap = np.asarray(self.ifmap, dtype=np.float64)
        filters = np.asarray(self.filters, dtype=np.float64)
        try:
            a, b, layer = lower_conv_operands(
                ifmap, filters, self.stride, self.padding, name=self.name
            )
        except ValueError as error:
            # Per-job boundary, like Job: one tenant's malformed layer must
            # not abort a whole multi-tenant serve() run deep in planning.
            raise ValueError(f"job {self.job_id!r}: {error}") from None
        object.__setattr__(self, "ifmap", ifmap)
        object.__setattr__(self, "filters", filters)
        object.__setattr__(self, "_conv_shape", layer)
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        if self.arrival_cycle < 0:
            raise ValueError(f"job {self.job_id!r}: arrival_cycle must be >= 0")

    @property
    def conv_shape(self) -> ConvShape:
        """The :class:`repro.im2col.lowering.ConvShape` this job executes."""
        return self._conv_shape

    def finalize_result(
        self, run: RunResult, accelerator: _AcceleratorBase
    ) -> RunResult:
        """Fold the GEMM result into the OFMAP and attach conv traffic.

        Produces exactly what ``accelerator.run_conv(ifmap, filters, ...)``
        returns for this layer: the ``(F, P, Q)`` output tensor plus the
        design's im2col DRAM traffic and energy.  Cycles and work counters
        pass through unchanged — the lowered GEMM *is* the execution.
        """
        layer = self.conv_shape
        traffic = accelerator.conv_traffic(layer)
        return dataclasses.replace(
            run,
            output=col2im_output(run.output, layer.out_h, layer.out_w),
            dram_bytes=traffic.total_bytes,
            dram_energy_mj=dram_energy_mj(traffic.total_bytes, accelerator.dram),
        )


#: The job kinds the scheduler accepts: plain GEMMs and lowered convs share
#: the :class:`_GemmOperandsMixin` interface but are otherwise unrelated
#: classes, so annotations spell the union out rather than pretending
#: everything is a :class:`Job`.
AnyJob = Job | ConvJob


@dataclass(frozen=True)
class JobResult:
    """Outcome of one served (or rejected) job.

    ``result`` is the exact :class:`RunResult` a direct ``run_gemm`` call
    *on the worker that hosted the job* would have produced — bit-exact
    output, identical counters — and is ``None`` for every non-completed
    status (rejected, failed, cancelled, expired, shed).  On a
    heterogeneous fleet ``worker_class`` records that worker's
    configuration label (:meth:`repro.api._AcceleratorBase.describe`).
    The cycle fields are simulated-clock instants: ``latency_cycles`` is
    arrival-to-finish (queueing included), ``queue_cycles`` the portion
    spent waiting for a worker.  ``attempts`` counts dispatches — 1 for a
    first-try completion, more when worker faults forced retries, 0 for
    jobs resolved without ever dispatching; ``preemptions`` counts how
    many times a tighter-deadline arrival cut the job out of a
    not-yet-executed batch (never folded into ``attempts`` — preemption
    is not a retry); ``slo`` is the owning tenant's SLO class;
    ``resolved_cycle`` is the simulated instant a non-completed job left
    the system.
    """

    job_id: str
    tenant: str
    name: str
    status: str
    priced_cycles: int
    arrival_cycle: int
    result: RunResult | None = None
    start_cycle: int | None = None
    finish_cycle: int | None = None
    worker_id: int | None = None
    worker_class: str | None = None
    batch_id: int | None = None
    batch_size: int = 0
    deadline_hint_cycles: int | None = None
    deprioritized: bool = field(default=False)
    attempts: int = 0
    preemptions: int = 0
    slo: str = SLO_BEST_EFFORT
    resolved_cycle: int | None = None

    @property
    def completed(self) -> bool:
        return self.status == STATUS_COMPLETED

    @property
    def queue_cycles(self) -> int | None:
        """Simulated cycles spent queued before execution began."""
        if self.start_cycle is None:
            return None
        return self.start_cycle - self.arrival_cycle

    @property
    def latency_cycles(self) -> int | None:
        """Simulated arrival-to-completion latency."""
        if self.finish_cycle is None:
            return None
        return self.finish_cycle - self.arrival_cycle

    @property
    def deadline_met(self) -> bool | None:
        """Whether the deadline hint was met (None without a hint).

        Only completed jobs can meet a deadline: expired, failed, shed or
        cancelled jobs report ``False`` when they carried a hint, so the
        metric never counts abandoned work as on-time (report-level
        statistics additionally expose the completed-jobs denominator as
        ``deadline_eligible``).
        """
        if self.deadline_hint_cycles is None:
            return None
        if not self.completed or self.latency_cycles is None:
            return False
        return self.latency_cycles <= self.deadline_hint_cycles

    def trace_events(self, *, pid: int = 0, tid: int = 0) -> tuple[TraceEvent, ...]:
        """Canonical trace events for this terminal outcome.

        The one place a job outcome is rendered into trace form, so the
        scheduler's emission sites (terminal resolution on the scheduler
        track, completion on the hosting worker's track) cannot drift from
        each other.  Completed jobs yield a ``job.execute`` span covering
        ``[start_cycle, finish_cycle)`` plus a ``job.completed`` instant
        carrying the latency split the trace summarizer consumes; every
        other status yields a single ``job.<status>`` instant at its
        ``resolved_cycle``.  All payloads are simulated-clock quantities
        only — never wall time.

        >>> done = JobResult(job_id="j0", tenant="t0", name="gemm",
        ...                  status=STATUS_COMPLETED, priced_cycles=90,
        ...                  arrival_cycle=0, start_cycle=10, finish_cycle=100)
        >>> [event.name for event in done.trace_events(pid=1, tid=0)]
        ['job.execute', 'job.completed']
        >>> shed = JobResult(job_id="j1", tenant="t0", name="gemm",
        ...                  status=STATUS_SHED, priced_cycles=90,
        ...                  arrival_cycle=5, resolved_cycle=5)
        >>> shed.trace_events()[0].name, shed.trace_events()[0].cycle
        ('job.shed', 5)
        """
        if self.completed and self.start_cycle is not None:
            finish = self.finish_cycle if self.finish_cycle is not None else 0
            span_args = {
                "job_id": self.job_id,
                "tenant": self.tenant,
                "batch_id": self.batch_id,
                "attempts": self.attempts,
            }
            done_args = {
                "job_id": self.job_id,
                "tenant": self.tenant,
                "arrival_cycle": self.arrival_cycle,
                "latency_cycles": self.latency_cycles,
                "queue_cycles": self.queue_cycles,
                "batch_id": self.batch_id,
                "attempts": self.attempts,
                "preemptions": self.preemptions,
                "slo": self.slo,
                "deadline_met": self.deadline_met,
            }
            return (
                TraceEvent(
                    "job.execute",
                    "X",
                    self.start_cycle,
                    finish - self.start_cycle,
                    pid,
                    tid,
                    "serve",
                    tuple(sorted(span_args.items())),
                ),
                TraceEvent(
                    "job.completed",
                    "i",
                    finish,
                    0,
                    pid,
                    tid,
                    "serve",
                    tuple(sorted(done_args.items())),
                ),
            )
        cycle = (
            self.resolved_cycle
            if self.resolved_cycle is not None
            else self.arrival_cycle
        )
        args = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "attempts": self.attempts,
            "preemptions": self.preemptions,
            "slo": self.slo,
            "priced_cycles": self.priced_cycles,
        }
        return (
            TraceEvent(
                f"job.{self.status}",
                "i",
                cycle,
                0,
                pid,
                tid,
                "serve",
                tuple(sorted(args.items())),
            ),
        )

    def to_dict(self, include_output: bool = False) -> dict:
        """JSON-serializable view (``repro serve --json``)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "name": self.name,
            "status": self.status,
            "priced_cycles": int(self.priced_cycles),
            "arrival_cycle": int(self.arrival_cycle),
            "start_cycle": None if self.start_cycle is None else int(self.start_cycle),
            "finish_cycle": (
                None if self.finish_cycle is None else int(self.finish_cycle)
            ),
            "queue_cycles": (
                None if self.queue_cycles is None else int(self.queue_cycles)
            ),
            "latency_cycles": (
                None if self.latency_cycles is None else int(self.latency_cycles)
            ),
            "worker_id": self.worker_id,
            "worker_class": self.worker_class,
            "batch_id": self.batch_id,
            "batch_size": self.batch_size,
            "deadline_hint_cycles": self.deadline_hint_cycles,
            "deadline_met": self.deadline_met,
            "deprioritized": self.deprioritized,
            "attempts": self.attempts,
            "preemptions": self.preemptions,
            "slo": self.slo,
            "resolved_cycle": (
                None if self.resolved_cycle is None else int(self.resolved_cycle)
            ),
            "result": (
                None if self.result is None else self.result.to_dict(include_output)
            ),
        }

"""ResNet50 convolution layers (He et al., 2016).

The layer table is generated from the standard bottleneck architecture so
that every stage / block / branch is represented with its exact shape.  The
default input resolution is the canonical 224x224; the paper's Table 3 entry
``Resnet50_0_conv2d`` (N = 62500 output pixels) implies the authors lowered
the stem at a larger input resolution, so the resolution is a parameter and
EXPERIMENTS.md records the setting used for each reproduced number.

Only convolution layers are listed (the paper's DRAM-traffic numbers are for
conv layers only); the final fully-connected layer is excluded.
"""

from __future__ import annotations

from repro.im2col.lowering import ConvShape


def _bottleneck_stage(
    stage_name: str,
    in_channels: int,
    mid_channels: int,
    out_channels: int,
    spatial: int,
    num_blocks: int,
    first_stride: int,
) -> list[ConvShape]:
    """Expand one ResNet50 bottleneck stage into its convolution layers."""
    layers: list[ConvShape] = []
    current_in = in_channels
    current_spatial = spatial
    for block in range(num_blocks):
        stride = first_stride if block == 0 else 1
        out_spatial = current_spatial // stride
        prefix = f"{stage_name}_block{block}"
        layers.append(
            ConvShape(
                name=f"{prefix}_conv1x1a",
                in_channels=current_in,
                ifmap_h=current_spatial,
                ifmap_w=current_spatial,
                kernel_h=1,
                kernel_w=1,
                num_filters=mid_channels,
                stride=1,
                padding=0,
            )
        )
        layers.append(
            ConvShape(
                name=f"{prefix}_conv3x3",
                in_channels=mid_channels,
                ifmap_h=current_spatial,
                ifmap_w=current_spatial,
                kernel_h=3,
                kernel_w=3,
                num_filters=mid_channels,
                stride=stride,
                padding=1,
            )
        )
        layers.append(
            ConvShape(
                name=f"{prefix}_conv1x1b",
                in_channels=mid_channels,
                ifmap_h=out_spatial,
                ifmap_w=out_spatial,
                kernel_h=1,
                kernel_w=1,
                num_filters=out_channels,
                stride=1,
                padding=0,
            )
        )
        if block == 0:
            layers.append(
                ConvShape(
                    name=f"{prefix}_downsample",
                    in_channels=current_in,
                    ifmap_h=current_spatial,
                    ifmap_w=current_spatial,
                    kernel_h=1,
                    kernel_w=1,
                    num_filters=out_channels,
                    stride=stride,
                    padding=0,
                )
            )
        current_in = out_channels
        current_spatial = out_spatial
    return layers


def resnet50_conv_layers(input_size: int = 224) -> tuple[ConvShape, ...]:
    """All convolution layers of ResNet50 for a square RGB input.

    Parameters
    ----------
    input_size:
        Input image resolution (224 for the canonical ImageNet setting).
    """
    if input_size < 32 or input_size % 32:
        raise ValueError("input_size must be a positive multiple of 32 (>= 32)")
    layers: list[ConvShape] = [
        ConvShape(
            name="conv1_stem",
            in_channels=3,
            ifmap_h=input_size,
            ifmap_w=input_size,
            kernel_h=7,
            kernel_w=7,
            num_filters=64,
            stride=2,
            padding=3,
        )
    ]
    # After the stem (stride 2) and the 3x3/stride-2 max pool.
    stage_spatial = input_size // 4
    layers += _bottleneck_stage("conv2", 64, 64, 256, stage_spatial, 3, 1)
    layers += _bottleneck_stage("conv3", 256, 128, 512, stage_spatial, 4, 2)
    layers += _bottleneck_stage("conv4", 512, 256, 1024, stage_spatial // 2, 6, 2)
    layers += _bottleneck_stage("conv5", 1024, 512, 2048, stage_spatial // 4, 3, 2)
    return tuple(layers)


#: ResNet50 at the canonical 224x224 input resolution.
RESNET50_CONV_LAYERS: tuple[ConvShape, ...] = resnet50_conv_layers(224)

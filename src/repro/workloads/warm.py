"""Pre-pricing a workload mix into the persistent estimate store.

``repro cache warm`` exists so the *first* serving process (or CI step, or
figure sweep) of the day does not pay cold-start admission pricing: a warm
pass prices a deterministic workload mix — the Table 3 GEMM workloads plus
the convolution layers of the requested CNNs — across the requested array
configurations, dataflows and architectures, and the shared estimate
cache's disk layer (:func:`repro.engine.cache.attach_estimate_store`)
journals every priced point for the processes that follow.  The sweep goes
through :func:`repro.engine.cached_gemm_cycles` /
:func:`repro.engine.cached_conv_cycles`, i.e. exactly the audited keys the
serving admission controller prices jobs under.

The mix is pure enumeration — no RNG, no wall-clock dependence — so two
warms of the same mix are idempotent: the second pass appends nothing and
the journal does not grow (``repro cache warm`` twice is free).

>>> spec = WarmSpec(configs=((8, 8),), networks=())
>>> len(list(spec.gemm_points())) == len(spec.workloads) * 2 * len(spec.dataflows)
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.arch.dataflow import Dataflow
from repro.engine.cache import (
    cached_conv_cycles,
    cached_gemm_cycles,
    estimate_cache_disk_info,
    estimate_cache_info,
)
from repro.im2col.lowering import ConvShape, GemmShape
from repro.workloads.gemm_workloads import TABLE3_GEMM_WORKLOADS
from repro.workloads.mobilenet import MOBILENET_V1_LAYERS
from repro.workloads.resnet50 import RESNET50_CONV_LAYERS
from repro.workloads.yolov3 import YOLOV3_CONV_LAYERS

#: Conv-layer tables addressable by ``--network`` (efficientnet shares its
#: layer table module with the energy sweeps; the warm default sticks to
#: the three networks the serving traces draw from).
WARM_NETWORKS: dict[str, tuple[ConvShape, ...]] = {
    "resnet50": tuple(RESNET50_CONV_LAYERS),
    "yolov3": tuple(YOLOV3_CONV_LAYERS),
    "mobilenet": tuple(MOBILENET_V1_LAYERS),
}


@dataclass(frozen=True)
class WarmSpec:
    """One deterministic warm sweep (what to price, on what hardware)."""

    #: ``(rows, cols)`` array configurations to price against.
    configs: tuple[tuple[int, int], ...] = ((32, 32),)
    #: Dataflows to price each point under.
    dataflows: tuple[Dataflow, ...] = (
        Dataflow.OUTPUT_STATIONARY,
        Dataflow.WEIGHT_STATIONARY,
        Dataflow.INPUT_STATIONARY,
    )
    #: Execution engine the estimates are keyed under.
    engine: str = "wavefront"
    #: ``P_R x P_C`` scale-out grid (``(1, 1)`` = scale-up, Eq. 2).
    scale_out: tuple[int, int] = (1, 1)
    #: CNNs whose conv layers join the mix (keys of :data:`WARM_NETWORKS`).
    networks: tuple[str, ...] = ("resnet50",)
    #: GEMM workloads in the mix (Table 3 by default).
    workloads: tuple[GemmShape, ...] = field(
        default=tuple(TABLE3_GEMM_WORKLOADS), repr=False
    )

    def __post_init__(self) -> None:
        for name in self.networks:
            if name not in WARM_NETWORKS:
                raise ValueError(
                    f"unknown network {name!r}; expected one of "
                    f"{', '.join(sorted(WARM_NETWORKS))}"
                )
        if not self.configs:
            raise ValueError("warm spec needs at least one (rows, cols) config")

    def gemm_points(
        self,
    ) -> Iterator[tuple[GemmShape, int, int, Dataflow, bool]]:
        """Every (workload, rows, cols, dataflow, axon) GEMM point."""
        for rows, cols in self.configs:
            for dataflow in self.dataflows:
                for axon in (False, True):
                    for workload in self.workloads:
                        yield workload, rows, cols, dataflow, axon

    def conv_points(
        self,
    ) -> Iterator[tuple[ConvShape, int, int, Dataflow, bool]]:
        """Every (layer, rows, cols, dataflow, axon) convolution point."""
        for network in self.networks:
            for rows, cols in self.configs:
                for dataflow in self.dataflows:
                    for axon in (False, True):
                        for layer in WARM_NETWORKS[network]:
                            yield layer, rows, cols, dataflow, axon


@dataclass(frozen=True)
class WarmReport:
    """Outcome of one warm pass, in estimate-cache delta terms.

    ``points`` lookups were issued; ``computed`` were priced fresh (and
    journaled when a store is attached), ``disk_hits`` came back from the
    journal and ``memory_hits`` from the in-process LRU.  ``store_entries``
    is the journal's entry count after the pass (0 with no store).
    """

    points: int
    computed: int
    disk_hits: int
    memory_hits: int
    store_entries: int
    store_appends: int

    def to_dict(self) -> dict[str, int]:
        return {
            "points": self.points,
            "computed": self.computed,
            "disk_hits": self.disk_hits,
            "memory_hits": self.memory_hits,
            "store_entries": self.store_entries,
            "store_appends": self.store_appends,
        }


def warm_estimate_mix(spec: WarmSpec | None = None) -> WarmReport:
    """Price ``spec``'s workload mix through the shared estimate cache.

    Call :func:`repro.engine.cache.attach_estimate_store` first to
    persist the priced points; without a store the warm still fills the
    in-process LRU (useful before a latency-sensitive in-process sweep).
    Deterministic and idempotent — see the module docstring.
    """
    spec = WarmSpec() if spec is None else spec
    info_before = estimate_cache_info()
    disk_before = estimate_cache_disk_info()
    points = 0
    for workload, rows, cols, dataflow, axon in spec.gemm_points():
        cached_gemm_cycles(
            workload.m,
            workload.k,
            workload.n,
            rows,
            cols,
            dataflow,
            axon,
            engine=spec.engine,
            partitions_rows=spec.scale_out[0],
            partitions_cols=spec.scale_out[1],
        )
        points += 1
    for layer, rows, cols, dataflow, axon in spec.conv_points():
        cached_conv_cycles(
            layer,
            rows,
            cols,
            dataflow,
            axon,
            engine=spec.engine,
            partitions_rows=spec.scale_out[0],
            partitions_cols=spec.scale_out[1],
        )
        points += 1
    info_after = estimate_cache_info()
    disk_after = estimate_cache_disk_info()
    disk_hits = disk_after.hits - disk_before.hits
    computed = info_after.misses - info_before.misses
    return WarmReport(
        points=points,
        computed=computed,
        disk_hits=disk_hits,
        memory_hits=(info_after.hits - info_before.hits) - disk_hits,
        store_entries=disk_after.entries,
        store_appends=disk_after.appends - disk_before.appends,
    )


__all__ = ["WARM_NETWORKS", "WarmReport", "WarmSpec", "warm_estimate_mix"]

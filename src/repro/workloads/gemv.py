"""GEMV (matrix-vector) workloads — the low arithmetic-intensity case.

GEMV is a GEMM with ``N = 1`` (or ``M = 1``): the conventional systolic array
wastes most of its fill latency because only one output column is produced,
which is why the paper highlights a ~2x Axon speedup for these shapes
(Fig. 14).  The set below covers the decode-time matrix-vector products of
the paper's transformer / translation / recommendation workloads — the same
weight matrices as Table 3 applied to a single token or a single user-item
pair — plus classic square GEMV sizes.
"""

from __future__ import annotations

from repro.im2col.lowering import GemmShape

#: Matrix-vector workloads (N = 1 throughout).
GEMV_WORKLOADS: tuple[GemmShape, ...] = (
    GemmShape("GPT3_qkv_gemv", m=2560, k=2560, n=1),
    GemmShape("GPT3_ffn_up_gemv", m=10240, k=2560, n=1),
    GemmShape("GPT3_ffn_down_gemv", m=2560, k=10240, n=1),
    GemmShape("GNMT_decoder_gemv", m=4096, k=1024, n=1),
    GemmShape("TF_decoder_gemv", m=1024, k=4096, n=1),
    GemmShape("NCF_scoring_gemv", m=2048, k=128, n=1),
    GemmShape("DB_embedding_gemv", m=1024, k=50000, n=1),
    GemmShape("square_gemv_256", m=256, k=256, n=1),
    GemmShape("square_gemv_1024", m=1024, k=1024, n=1),
    GemmShape("square_gemv_4096", m=4096, k=4096, n=1),
)


def gemv_workloads() -> tuple[GemmShape, ...]:
    """Return the GEMV workload set used for the Fig. 14 reproduction."""
    return GEMV_WORKLOADS

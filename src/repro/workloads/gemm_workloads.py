"""The GEMM / lowered-convolution workloads of the paper's Table 3.

Every entry records the ``(M, K, N)`` shape exactly as printed in Table 3.
The convolution entries (ResNet50_*, YOLO_v3_*) are already lowered to GEMM
via im2col (``M = filters``, ``K = C*R*S``, ``N = P*Q``); the full per-layer
convolution descriptions live in :mod:`repro.workloads.resnet50` and
:mod:`repro.workloads.yolov3`.
"""

from __future__ import annotations

from repro.im2col.lowering import GemmShape

#: Table 3 of the paper, verbatim.
TABLE3_WORKLOADS: tuple[GemmShape, ...] = (
    GemmShape("TF0", m=31999, k=84, n=1024),
    GemmShape("TF1", m=84, k=4096, n=1024),
    GemmShape("GNMT0", m=128, k=4096, n=2048),
    GemmShape("GNMT1", m=2048, k=32, n=4096),
    GemmShape("GPT3_0_matmul0", m=1024, k=1024, n=80),
    GemmShape("GPT3_1_matmul1", m=1024, k=2560, n=7680),
    GemmShape("GPT3_2_addmm", m=1024, k=2560, n=10240),
    GemmShape("GPT3_3_lmhead", m=1024, k=2560, n=50257),
    GemmShape("NCF0", m=2048, k=128, n=1),
    GemmShape("NCF1", m=256, k=2048, n=256),
    GemmShape("DB0", m=1024, k=50000, n=16),
    GemmShape("DB1", m=35, k=2560, n=4096),
    GemmShape("Resnet50_0_conv2d", m=64, k=147, n=62500),
    GemmShape("Resnet50_1_conv2d", m=512, k=4608, n=676),
    GemmShape("YOLO_v3_0_conv2d", m=64, k=288, n=42436),
    GemmShape("YOLO_v3_1_conv2d", m=128, k=576, n=10404),
    GemmShape("GEMM_0", m=128, k=10, n=128),
    GemmShape("GEMM_1", m=2048, k=10, n=2048),
    GemmShape("GEMM_2", m=1024, k=1024, n=128),
    GemmShape("GEMM_3", m=64, k=2560, n=2560),
)

#: Names of the entries that come from convolution layers (lowered via im2col).
_CONV_NAMES = frozenset(
    {
        "Resnet50_0_conv2d",
        "Resnet50_1_conv2d",
        "YOLO_v3_0_conv2d",
        "YOLO_v3_1_conv2d",
    }
)

#: Pure-GEMM workloads (transformers, recommendation, translation, synthetic).
TABLE3_GEMM_WORKLOADS: tuple[GemmShape, ...] = tuple(
    workload for workload in TABLE3_WORKLOADS if workload.name not in _CONV_NAMES
)

#: Convolution workloads lowered to GEMM.
TABLE3_CONV_WORKLOADS: tuple[GemmShape, ...] = tuple(
    workload for workload in TABLE3_WORKLOADS if workload.name in _CONV_NAMES
)


def workload_by_name(name: str) -> GemmShape:
    """Look up a Table 3 workload by its printed name (case-insensitive)."""
    lowered = name.strip().lower()
    for workload in TABLE3_WORKLOADS:
        if workload.name.lower() == lowered:
            return workload
    known = ", ".join(w.name for w in TABLE3_WORKLOADS)
    raise KeyError(f"unknown workload {name!r}; known workloads: {known}")

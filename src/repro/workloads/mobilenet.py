"""MobileNet-V1 layers (Howard et al., 2017).

MobileNet is the paper's main source of depthwise-convolution workloads
(Fig. 14): every "depthwise separable" block contributes one depthwise 3x3
layer and one pointwise 1x1 layer.  The standard 224x224, width-multiplier-1
configuration is tabulated.
"""

from __future__ import annotations

from repro.im2col.lowering import ConvShape


def _depthwise(name: str, channels: int, spatial: int, stride: int) -> ConvShape:
    return ConvShape(
        name=name,
        in_channels=channels,
        ifmap_h=spatial,
        ifmap_w=spatial,
        kernel_h=3,
        kernel_w=3,
        num_filters=channels,
        stride=stride,
        padding=1,
        depthwise=True,
    )


def _pointwise(name: str, in_channels: int, out_channels: int, spatial: int) -> ConvShape:
    return ConvShape(
        name=name,
        in_channels=in_channels,
        ifmap_h=spatial,
        ifmap_w=spatial,
        kernel_h=1,
        kernel_w=1,
        num_filters=out_channels,
        stride=1,
        padding=0,
    )


def mobilenet_v1_layers(input_size: int = 224) -> tuple[ConvShape, ...]:
    """All convolution layers of MobileNet-V1 (width multiplier 1.0)."""
    if input_size < 32 or input_size % 32:
        raise ValueError("input_size must be a positive multiple of 32 (>= 32)")
    layers: list[ConvShape] = [
        ConvShape(
            name="conv0_stem",
            in_channels=3,
            ifmap_h=input_size,
            ifmap_w=input_size,
            kernel_h=3,
            kernel_w=3,
            num_filters=32,
            stride=2,
            padding=1,
        )
    ]
    # (in_channels, out_channels, stride) per depthwise-separable block.
    blocks = [
        (32, 64, 1),
        (64, 128, 2),
        (128, 128, 1),
        (128, 256, 2),
        (256, 256, 1),
        (256, 512, 2),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 1024, 2),
        (1024, 1024, 1),
    ]
    spatial = input_size // 2
    for index, (in_channels, out_channels, stride) in enumerate(blocks):
        layers.append(_depthwise(f"dw{index}_3x3", in_channels, spatial, stride))
        spatial //= stride
        layers.append(_pointwise(f"pw{index}_1x1", in_channels, out_channels, spatial))
    return tuple(layers)


#: MobileNet-V1 at 224x224.
MOBILENET_V1_LAYERS: tuple[ConvShape, ...] = mobilenet_v1_layers(224)


def mobilenet_depthwise_layers(input_size: int = 224) -> tuple[ConvShape, ...]:
    """Only the depthwise layers (the DW-conv workloads of Fig. 14)."""
    return tuple(layer for layer in mobilenet_v1_layers(input_size) if layer.depthwise)


def mobilenet_pointwise_layers(input_size: int = 224) -> tuple[ConvShape, ...]:
    """Only the pointwise 1x1 layers."""
    return tuple(
        layer
        for layer in mobilenet_v1_layers(input_size)
        if not layer.depthwise and layer.kernel_h == 1
    )

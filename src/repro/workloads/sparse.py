"""Synthetic sparse-GEMM generators for the zero-gating experiment.

The paper's sparsity result (Sec. 5.2.1: 5.3% total power reduction at 10%
sparsity) only needs operands with a controlled fraction of exact zeros;
these helpers generate them reproducibly.
"""

from __future__ import annotations

import numpy as np


def sparse_matrix(
    rows: int,
    cols: int,
    sparsity: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """A dense matrix in which a ``sparsity`` fraction of entries is exactly 0.

    The zero positions are chosen uniformly at random; the remaining entries
    are standard-normal.  The realised sparsity equals the requested one up to
    rounding (``round(sparsity * rows * cols)`` zeros are placed).
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("matrix dimensions must be positive")
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must be in [0, 1]")
    rng = rng or np.random.default_rng()
    matrix = rng.standard_normal((rows, cols))
    # Guard against accidental zeros in the dense part so the realised
    # sparsity is exactly the number of planted zeros.
    matrix[matrix == 0.0] = 1.0
    num_zeros = round(sparsity * rows * cols)
    if num_zeros:
        flat_indices = rng.choice(rows * cols, size=num_zeros, replace=False)
        matrix.flat[flat_indices] = 0.0
    return matrix


def sparse_gemm_pair(
    m: int,
    k: int,
    n: int,
    ifmap_sparsity: float,
    filter_sparsity: float = 0.0,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """A reproducible ``(A, B)`` operand pair with independent sparsities."""
    rng = np.random.default_rng(seed)
    a = sparse_matrix(m, k, ifmap_sparsity, rng)
    b = sparse_matrix(k, n, filter_sparsity, rng)
    return a, b

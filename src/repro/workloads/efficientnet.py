"""EfficientNet-B0 convolution layers (Tan & Le, 2019).

EfficientNet-B0 is built from MBConv blocks (expansion 1x1, depthwise 3x3 or
5x5, squeeze-excite, projection 1x1).  The table lists the expansion,
depthwise and projection convolutions of every block at the canonical
224x224 resolution; squeeze-excite FC layers are omitted (they are tiny and
the paper's conv-traffic analysis does not include them).
"""

from __future__ import annotations

from repro.im2col.lowering import ConvShape

#: (expansion factor, in_channels, out_channels, kernel, stride, repeats, spatial)
_B0_STAGES: tuple[tuple[int, int, int, int, int, int, int], ...] = (
    (1, 32, 16, 3, 1, 1, 112),
    (6, 16, 24, 3, 2, 2, 112),
    (6, 24, 40, 5, 2, 2, 56),
    (6, 40, 80, 3, 2, 3, 28),
    (6, 80, 112, 5, 1, 3, 14),
    (6, 112, 192, 5, 2, 4, 14),
    (6, 192, 320, 3, 1, 1, 7),
)


def efficientnet_conv_layers(input_size: int = 224) -> tuple[ConvShape, ...]:
    """Convolution layers of EfficientNet-B0 scaled to ``input_size``."""
    if input_size < 32 or input_size % 32:
        raise ValueError("input_size must be a positive multiple of 32 (>= 32)")
    scale = input_size / 224.0
    layers: list[ConvShape] = [
        ConvShape(
            name="stem_conv3x3",
            in_channels=3,
            ifmap_h=input_size,
            ifmap_w=input_size,
            kernel_h=3,
            kernel_w=3,
            num_filters=32,
            stride=2,
            padding=1,
        )
    ]
    for stage_idx, (expand, c_in, c_out, kernel, stride, repeats, spatial224) in enumerate(
        _B0_STAGES
    ):
        spatial = max(1, round(spatial224 * scale))
        in_channels = c_in
        for rep in range(repeats):
            block_stride = stride if rep == 0 else 1
            prefix = f"mbconv{stage_idx}_{rep}"
            expanded = in_channels * expand
            if expand != 1:
                layers.append(
                    ConvShape(
                        name=f"{prefix}_expand1x1",
                        in_channels=in_channels,
                        ifmap_h=spatial,
                        ifmap_w=spatial,
                        kernel_h=1,
                        kernel_w=1,
                        num_filters=expanded,
                        stride=1,
                        padding=0,
                    )
                )
            layers.append(
                ConvShape(
                    name=f"{prefix}_dw{kernel}x{kernel}",
                    in_channels=expanded,
                    ifmap_h=spatial,
                    ifmap_w=spatial,
                    kernel_h=kernel,
                    kernel_w=kernel,
                    num_filters=expanded,
                    stride=block_stride,
                    padding=kernel // 2,
                    depthwise=True,
                )
            )
            out_spatial = spatial // block_stride
            layers.append(
                ConvShape(
                    name=f"{prefix}_project1x1",
                    in_channels=expanded,
                    ifmap_h=out_spatial,
                    ifmap_w=out_spatial,
                    kernel_h=1,
                    kernel_w=1,
                    num_filters=c_out,
                    stride=1,
                    padding=0,
                )
            )
            in_channels = c_out
            spatial = out_spatial
    layers.append(
        ConvShape(
            name="head_conv1x1",
            in_channels=320,
            ifmap_h=max(1, round(7 * scale)),
            ifmap_w=max(1, round(7 * scale)),
            kernel_h=1,
            kernel_w=1,
            num_filters=1280,
            stride=1,
            padding=0,
        )
    )
    return tuple(layers)


#: EfficientNet-B0 at 224x224.
EFFICIENTNET_B0_LAYERS: tuple[ConvShape, ...] = efficientnet_conv_layers(224)

"""Conformer-block workloads (Gulati et al., 2020).

The Conformer mixes GEMM-heavy attention / feed-forward modules with a
convolution module whose core is a depthwise 1-D convolution — exactly the
"Conv and GeMM" mixture the paper lists as one of its workload families.  The
shapes below correspond to the Conformer-L configuration (encoder dim 512,
feed-forward dim 2048, 8 heads, depthwise kernel 31) over a 200-frame
utterance; the sequence length is a parameter.
"""

from __future__ import annotations

from repro.im2col.lowering import ConvShape, GemmShape


def conformer_workloads(
    sequence_length: int = 200,
    model_dim: int = 512,
    ff_dim: int = 2048,
    num_heads: int = 8,
    depthwise_kernel: int = 31,
) -> tuple[tuple[GemmShape, ...], tuple[ConvShape, ...]]:
    """GEMM and convolution workloads of one Conformer encoder block.

    Returns
    -------
    tuple
        ``(gemms, convs)`` — the GEMM shapes of the attention and feed-forward
        modules, and the convolution-module layers (pointwise + depthwise).
    """
    if sequence_length <= 0 or model_dim <= 0 or ff_dim <= 0:
        raise ValueError("dimensions must be positive")
    if model_dim % num_heads:
        raise ValueError("model_dim must be divisible by num_heads")
    head_dim = model_dim // num_heads
    gemms = (
        # First feed-forward module (two half-step FFNs in a Conformer block).
        GemmShape("ffn1_up", m=sequence_length, k=model_dim, n=ff_dim),
        GemmShape("ffn1_down", m=sequence_length, k=ff_dim, n=model_dim),
        # Multi-head self-attention projections.
        GemmShape("mhsa_qkv", m=sequence_length, k=model_dim, n=3 * model_dim),
        GemmShape("mhsa_scores", m=num_heads * sequence_length, k=head_dim, n=sequence_length),
        GemmShape("mhsa_context", m=num_heads * sequence_length, k=sequence_length, n=head_dim),
        GemmShape("mhsa_output", m=sequence_length, k=model_dim, n=model_dim),
        # Second feed-forward module.
        GemmShape("ffn2_up", m=sequence_length, k=model_dim, n=ff_dim),
        GemmShape("ffn2_down", m=sequence_length, k=ff_dim, n=model_dim),
    )
    convs = (
        # Pointwise conv expanding to 2*d for the GLU.
        ConvShape(
            name="convmod_pointwise1",
            in_channels=model_dim,
            ifmap_h=1,
            ifmap_w=sequence_length,
            kernel_h=1,
            kernel_w=1,
            num_filters=2 * model_dim,
        ),
        # Depthwise 1-D convolution over time with kernel 31.
        ConvShape(
            name="convmod_depthwise",
            in_channels=model_dim,
            ifmap_h=1,
            ifmap_w=sequence_length,
            kernel_h=1,
            kernel_w=depthwise_kernel,
            num_filters=model_dim,
            padding=0 if sequence_length >= depthwise_kernel else 0,
            depthwise=True,
        ),
        # Pointwise conv back to the model dimension.
        ConvShape(
            name="convmod_pointwise2",
            in_channels=model_dim,
            ifmap_h=1,
            ifmap_w=sequence_length,
            kernel_h=1,
            kernel_w=1,
            num_filters=model_dim,
        ),
    )
    return gemms, convs


#: GEMMs of a Conformer-L block over a 200-frame utterance.
CONFORMER_BLOCK_GEMMS: tuple[GemmShape, ...] = conformer_workloads()[0]

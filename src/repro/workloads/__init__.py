"""Workload database used by the paper's evaluation (Sec. 5).

The evaluation draws on four workload families:

* GEMM workloads from transformers, recommendation and translation models
  (Table 3) — :mod:`repro.workloads.gemm_workloads`;
* convolution layers from CNNs (ResNet50, YOLOv3, MobileNet, EfficientNet)
  — :mod:`repro.workloads.resnet50`, :mod:`repro.workloads.yolov3`,
  :mod:`repro.workloads.mobilenet`, :mod:`repro.workloads.efficientnet`;
* Conformer blocks mixing convolution and GEMM —
  :mod:`repro.workloads.conformer`;
* low-arithmetic-intensity GEMV and depthwise-convolution workloads
  (Fig. 14) — :mod:`repro.workloads.gemv` and
  :mod:`repro.workloads.depthwise`;
* synthetic sparse-GEMM generators for the zero-gating experiment —
  :mod:`repro.workloads.sparse`.
"""

from repro.workloads.gemm_workloads import (
    TABLE3_WORKLOADS,
    TABLE3_GEMM_WORKLOADS,
    TABLE3_CONV_WORKLOADS,
    workload_by_name,
)
from repro.workloads.resnet50 import RESNET50_CONV_LAYERS, resnet50_conv_layers
from repro.workloads.yolov3 import YOLOV3_CONV_LAYERS, yolov3_conv_layers
from repro.workloads.mobilenet import (
    MOBILENET_V1_LAYERS,
    mobilenet_depthwise_layers,
    mobilenet_pointwise_layers,
)
from repro.workloads.efficientnet import EFFICIENTNET_B0_LAYERS, efficientnet_conv_layers
from repro.workloads.conformer import CONFORMER_BLOCK_GEMMS, conformer_workloads
from repro.workloads.gemv import GEMV_WORKLOADS, gemv_workloads
from repro.workloads.depthwise import DEPTHWISE_WORKLOADS, depthwise_workloads
from repro.workloads.sparse import sparse_matrix, sparse_gemm_pair
from repro.workloads.warm import (
    WARM_NETWORKS,
    WarmReport,
    WarmSpec,
    warm_estimate_mix,
)
from repro.workloads.serving import (
    DEFAULT_CONV_WORKLOADS,
    TenantTrafficSpec,
    equal_tenants,
    scaled_conv_workload,
    scaled_workload,
    synthetic_trace,
    tenant_budgets,
    tenant_slo_classes,
    tenant_weights,
)

__all__ = [
    "TABLE3_WORKLOADS",
    "TABLE3_GEMM_WORKLOADS",
    "TABLE3_CONV_WORKLOADS",
    "workload_by_name",
    "RESNET50_CONV_LAYERS",
    "resnet50_conv_layers",
    "YOLOV3_CONV_LAYERS",
    "yolov3_conv_layers",
    "MOBILENET_V1_LAYERS",
    "mobilenet_depthwise_layers",
    "mobilenet_pointwise_layers",
    "EFFICIENTNET_B0_LAYERS",
    "efficientnet_conv_layers",
    "CONFORMER_BLOCK_GEMMS",
    "conformer_workloads",
    "GEMV_WORKLOADS",
    "gemv_workloads",
    "DEPTHWISE_WORKLOADS",
    "depthwise_workloads",
    "sparse_matrix",
    "sparse_gemm_pair",
    "TenantTrafficSpec",
    "DEFAULT_CONV_WORKLOADS",
    "equal_tenants",
    "scaled_conv_workload",
    "scaled_workload",
    "synthetic_trace",
    "tenant_budgets",
    "tenant_slo_classes",
    "tenant_weights",
    "WARM_NETWORKS",
    "WarmReport",
    "WarmSpec",
    "warm_estimate_mix",
]

"""Depthwise-convolution workloads (Fig. 14).

Depthwise convolutions have very low arithmetic intensity: each channel is an
independent single-filter convolution, so the lowered GEMM has ``M = 1`` per
channel (``K = R*S``, ``N = P*Q``) and the conventional array's fill latency
dominates.  The workload set combines the depthwise layers of MobileNet-V1
and EfficientNet-B0 with the Conformer's depthwise temporal convolution.
"""

from __future__ import annotations

from repro.im2col.lowering import ConvShape, GemmShape, lower_conv_to_gemm
from repro.workloads.efficientnet import efficientnet_conv_layers
from repro.workloads.mobilenet import mobilenet_depthwise_layers


def depthwise_conv_layers() -> tuple[ConvShape, ...]:
    """All depthwise layers from MobileNet-V1 plus EfficientNet-B0."""
    efficient_dw = tuple(
        layer for layer in efficientnet_conv_layers() if layer.depthwise
    )
    return mobilenet_depthwise_layers() + efficient_dw


def depthwise_per_channel_gemm(layer: ConvShape) -> GemmShape:
    """The per-channel GEMM a depthwise layer decomposes into.

    Each channel is an independent ``(1, R*S) x (R*S, P*Q)`` GEMM; the
    runtime model runs the channels back to back (or across scale-out
    arrays), matching how the paper evaluates DW-conv.
    """
    if not layer.depthwise:
        raise ValueError(f"{layer.name} is not a depthwise layer")
    return GemmShape(
        name=f"{layer.name}_per_channel",
        m=1,
        k=layer.kernel_h * layer.kernel_w,
        n=layer.output_pixels,
    )


def depthwise_workloads() -> tuple[GemmShape, ...]:
    """Lowered GEMM shapes (all channels) for the DW-conv workload set."""
    return tuple(lower_conv_to_gemm(layer) for layer in depthwise_conv_layers())


#: Depthwise workloads lowered to GEMM (``M = channels``, ``K = R*S``, ``N = P*Q``).
DEPTHWISE_WORKLOADS: tuple[GemmShape, ...] = depthwise_workloads()

"""YOLOv3 convolution layers (Redmon & Farhadi, 2018).

The table covers the Darknet-53 backbone plus the three detection heads at
the standard 416x416 input resolution.  Layer shapes follow the published
configuration: alternating 3x3 (stride 1 or 2) and 1x1 convolutions with
residual blocks repeated (1, 2, 8, 8, 4) times, then three YOLO heads at
13x13, 26x26 and 52x52.

As with ResNet50, absolute DRAM-traffic megabytes depend on the exact input
resolution and on which layers the original authors counted; the resolution
is therefore a parameter and EXPERIMENTS.md records the configuration used.
"""

from __future__ import annotations

from repro.im2col.lowering import ConvShape


def _conv(
    name: str,
    in_channels: int,
    spatial: int,
    kernel: int,
    filters: int,
    stride: int = 1,
) -> ConvShape:
    return ConvShape(
        name=name,
        in_channels=in_channels,
        ifmap_h=spatial,
        ifmap_w=spatial,
        kernel_h=kernel,
        kernel_w=kernel,
        num_filters=filters,
        stride=stride,
        padding=kernel // 2,
    )


def _residual_stage(
    stage: str, in_channels: int, spatial: int, num_blocks: int
) -> list[ConvShape]:
    """One Darknet-53 residual stage: blocks of (1x1 half, 3x3 full)."""
    half = in_channels // 2
    layers: list[ConvShape] = []
    for block in range(num_blocks):
        layers.append(_conv(f"{stage}_block{block}_1x1", in_channels, spatial, 1, half))
        layers.append(_conv(f"{stage}_block{block}_3x3", half, spatial, 3, in_channels))
    return layers


def _detection_head(
    name: str, in_channels: int, mid_channels: int, spatial: int, num_outputs: int = 255
) -> list[ConvShape]:
    """A YOLOv3 detection head: five alternating convs, a 3x3 and a 1x1 output."""
    layers: list[ConvShape] = []
    channels = in_channels
    for idx in range(5):
        if idx % 2 == 0:
            layers.append(_conv(f"{name}_conv{idx}_1x1", channels, spatial, 1, mid_channels))
            channels = mid_channels
        else:
            layers.append(_conv(f"{name}_conv{idx}_3x3", channels, spatial, 3, mid_channels * 2))
            channels = mid_channels * 2
    layers.append(_conv(f"{name}_conv5_3x3", channels, spatial, 3, mid_channels * 2))
    layers.append(_conv(f"{name}_output_1x1", mid_channels * 2, spatial, 1, num_outputs))
    return layers


def yolov3_conv_layers(input_size: int = 416) -> tuple[ConvShape, ...]:
    """All convolution layers of YOLOv3 for a square input.

    Parameters
    ----------
    input_size:
        Input image resolution; must be a multiple of 32 (the network
        downsamples by 32 overall).  The standard setting is 416.
    """
    if input_size < 64 or input_size % 32:
        raise ValueError("input_size must be a multiple of 32 (>= 64)")
    s = input_size
    layers: list[ConvShape] = [
        _conv("darknet_conv0_3x3", 3, s, 3, 32),
        _conv("darknet_down1_3x3_s2", 32, s, 3, 64, stride=2),
    ]
    s //= 2
    layers += _residual_stage("darknet_stage1", 64, s, 1)
    layers.append(_conv("darknet_down2_3x3_s2", 64, s, 3, 128, stride=2))
    s //= 2
    layers += _residual_stage("darknet_stage2", 128, s, 2)
    layers.append(_conv("darknet_down3_3x3_s2", 128, s, 3, 256, stride=2))
    s //= 2
    layers += _residual_stage("darknet_stage3", 256, s, 8)
    stage3_spatial = s
    layers.append(_conv("darknet_down4_3x3_s2", 256, s, 3, 512, stride=2))
    s //= 2
    layers += _residual_stage("darknet_stage4", 512, s, 8)
    stage4_spatial = s
    layers.append(_conv("darknet_down5_3x3_s2", 512, s, 3, 1024, stride=2))
    s //= 2
    layers += _residual_stage("darknet_stage5", 1024, s, 4)

    # Detection heads: 13x13 on the deepest features, then upsample + concat.
    layers += _detection_head("head_large", 1024, 512, s)
    layers.append(_conv("neck_large_to_medium_1x1", 512, s, 1, 256))
    layers += _detection_head("head_medium", 256 + 512, 256, stage4_spatial)
    layers.append(_conv("neck_medium_to_small_1x1", 256, stage4_spatial, 1, 128))
    layers += _detection_head("head_small", 128 + 256, 128, stage3_spatial)
    return tuple(layers)


#: YOLOv3 at the standard 416x416 input resolution.
YOLOV3_CONV_LAYERS: tuple[ConvShape, ...] = yolov3_conv_layers(416)

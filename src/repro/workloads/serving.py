"""Synthetic multi-tenant serving traces over the Table 3 workload mix.

``repro serve`` and the serving-throughput benchmark replay traces built
here: each tenant offers a Poisson stream of GEMM jobs drawn from the
Table 3 shapes (dimension-capped so functional execution stays fast), with
arrival rates calibrated in *offered load* — multiples of one worker's
service capacity — rather than raw QPS, so a trace saturates a fleet the
same way regardless of the array configuration it targets.

The construction is fully deterministic for a given seed: per-tenant
substreams come from ``numpy``'s seed-sequence spawning, so adding a tenant
never perturbs another tenant's arrivals or operands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.im2col.lowering import GemmShape
from repro.serve.job import Job
from repro.serve.scheduler import planned_gemm_cycles
from repro.workloads.gemm_workloads import TABLE3_WORKLOADS


@dataclass(frozen=True)
class TenantTrafficSpec:
    """One tenant's offered traffic in a synthetic trace.

    ``load_share`` scales the tenant's arrival rate relative to the other
    tenants (the trace's total offered load is fixed; shares apportion it).
    ``weight`` (fair share) and ``budget_cycles`` (admission allowance) are
    carried on the spec so one object describes the tenant end to end, but
    the scheduler does not read specs — hand them over explicitly::

        scheduler = AsyncGemmScheduler(
            fleet,
            weights=tenant_weights(specs),
            budgets=tenant_budgets(specs),
        )
    """

    name: str
    weight: float = 1.0
    load_share: float = 1.0
    budget_cycles: int | None = None

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be > 0")
        if self.load_share <= 0:
            raise ValueError(f"tenant {self.name!r}: load_share must be > 0")


def equal_tenants(count: int, prefix: str = "tenant") -> tuple[TenantTrafficSpec, ...]:
    """``count`` tenants with identical weights and offered-load shares."""
    if count < 1:
        raise ValueError(f"tenant count must be >= 1, got {count}")
    return tuple(TenantTrafficSpec(f"{prefix}-{idx}") for idx in range(count))


def tenant_weights(tenants: Sequence[TenantTrafficSpec]) -> dict[str, float]:
    """Fair-share weights keyed by tenant, for ``AsyncGemmScheduler(weights=...)``."""
    return {spec.name: spec.weight for spec in tenants}


def tenant_budgets(tenants: Sequence[TenantTrafficSpec]) -> dict[str, int]:
    """Admission budgets keyed by tenant (budget-less tenants omitted, i.e.
    unmetered), for ``AsyncGemmScheduler(budgets=...)``."""
    return {
        spec.name: spec.budget_cycles
        for spec in tenants
        if spec.budget_cycles is not None
    }


def scaled_workload(shape: GemmShape, max_dim: int) -> GemmShape:
    """Cap a workload's dimensions so functional serving stays cheap.

    Table 3 includes production shapes (e.g. the GPT-3 LM head's
    ``N = 50257``) that are impractical to execute functionally thousands
    of times in a trace; clamping each dimension preserves the mix's shape
    diversity — tall, wide and square problems remain distinct — while
    bounding per-job cost.
    """
    if max_dim < 1:
        raise ValueError(f"max_dim must be >= 1, got {max_dim}")
    return GemmShape(
        shape.name,
        m=min(shape.m, max_dim),
        k=min(shape.k, max_dim),
        n=min(shape.n, max_dim),
    )


def synthetic_trace(
    accelerator,
    tenants: Sequence[TenantTrafficSpec] | int = 4,
    *,
    jobs_per_tenant: int = 12,
    offered_load: float = 4.0,
    max_dim: int = 128,
    workloads: Sequence[GemmShape] = TABLE3_WORKLOADS,
    seed: int = 0,
    deadline_slack: float | None = None,
) -> list[Job]:
    """Build a deterministic mixed-workload trace for a serving run.

    Parameters
    ----------
    accelerator:
        Calibration target: the tile-exact cycles the pool's shapes occupy
        it for (:func:`repro.serve.scheduler.planned_gemm_cycles`) set the
        mean service time that ``offered_load`` is expressed against.
        Deadline hints, by contrast, are priced with the same analytical
        estimates admission uses (:meth:`estimate_gemm_cycles`).
    tenants:
        Tenant specs, or an integer for that many identical tenants.
    jobs_per_tenant:
        Jobs each tenant submits.
    offered_load:
        Aggregate arrival rate as a multiple of one worker's service rate:
        1.0 keeps a single accelerator exactly busy on average, 4.0
        saturates a fleet of four.
    max_dim:
        Dimension cap applied to every workload shape
        (:func:`scaled_workload`).
    workloads:
        Shape pool to sample uniformly per job (default: all of Table 3).
    seed:
        Root seed; tenant substreams are spawned from it.
    deadline_slack:
        When set, each job carries ``deadline_hint_cycles = slack x`` its
        priced cycles (advisory; lets reports count deadline misses).
    """
    if isinstance(tenants, int):
        tenants = equal_tenants(tenants)
    tenants = tuple(tenants)
    if not tenants:
        raise ValueError("trace needs at least one tenant")
    if jobs_per_tenant < 1:
        raise ValueError(f"jobs_per_tenant must be >= 1, got {jobs_per_tenant}")
    if offered_load <= 0:
        raise ValueError(f"offered_load must be > 0, got {offered_load}")

    pool = tuple(scaled_workload(shape, max_dim) for shape in workloads)
    if not pool:
        raise ValueError("workload pool is empty")
    # Calibrate against the tile-exact cycles jobs will actually occupy a
    # worker for (the padded Eq. 2/3 estimates used for admission pricing
    # overprice ragged shapes, which would silently deflate the real load).
    mean_cost = sum(
        planned_gemm_cycles(accelerator, shape.m, shape.k, shape.n) for shape in pool
    ) / len(pool)

    # offered_load jobs-in-service on average across the whole trace;
    # apportion the aggregate rate by each tenant's load share.
    total_share = sum(spec.load_share for spec in tenants)
    aggregate_rate = offered_load / mean_cost  # jobs per cycle

    jobs: list[Job] = []
    streams = np.random.SeedSequence(seed).spawn(len(tenants))
    for spec, stream in zip(tenants, streams):
        rng = np.random.default_rng(stream)
        rate = aggregate_rate * spec.load_share / total_share
        arrival = 0.0
        for index in range(jobs_per_tenant):
            arrival += rng.exponential(1.0 / rate)
            shape = pool[int(rng.integers(len(pool)))]
            a = rng.standard_normal((shape.m, shape.k))
            b = rng.standard_normal((shape.k, shape.n))
            deadline = None
            if deadline_slack is not None:
                priced = accelerator.estimate_gemm_cycles(shape.m, shape.k, shape.n)
                deadline = int(round(deadline_slack * priced))
            jobs.append(
                Job(
                    job_id=f"{spec.name}-{index:04d}",
                    tenant=spec.name,
                    a=a,
                    b=b,
                    name=shape.name,
                    deadline_hint_cycles=deadline,
                    arrival_cycle=int(round(arrival)),
                )
            )
    jobs.sort(key=lambda job: (job.arrival_cycle, job.job_id))
    return jobs

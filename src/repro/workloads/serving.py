"""Synthetic multi-tenant serving traces over the Table 3 workload mix.

``repro serve`` and the serving-throughput benchmarks replay traces built
here: each tenant offers a Poisson stream of jobs drawn from the Table 3
GEMM shapes (dimension-capped so functional execution stays fast) —
optionally mixed with convolution layers (``conv_fraction`` > 0 turns that
share of each tenant's jobs into :class:`repro.serve.job.ConvJob` instances
drawn from a CNN layer pool) — with arrival rates calibrated in *offered
load*: multiples of one worker's service capacity (the fleet's mean worker,
when a possibly heterogeneous fleet is passed) rather than raw QPS, so a
trace saturates a fleet the same way regardless of the array configuration
it targets.

The construction is fully deterministic for a given seed: per-tenant
substreams come from ``numpy``'s seed-sequence spawning, so adding a tenant
never perturbs another tenant's arrivals or operands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.golden.conv import conv_output_shape
from repro.im2col.lowering import ConvShape, GemmShape, lower_conv_to_gemm
from repro.serve.job import SLO_BEST_EFFORT, SLO_CLASSES, ConvJob, Job
from repro.serve.scheduler import planned_gemm_cycles
from repro.workloads.gemm_workloads import TABLE3_WORKLOADS
from repro.workloads.resnet50 import RESNET50_CONV_LAYERS


@dataclass(frozen=True)
class TenantTrafficSpec:
    """One tenant's offered traffic in a synthetic trace.

    ``load_share`` scales the tenant's arrival rate relative to the other
    tenants (the trace's total offered load is fixed; shares apportion it).
    ``weight`` (fair share) and ``budget_cycles`` (admission allowance) are
    carried on the spec so one object describes the tenant end to end, but
    the scheduler does not read specs — hand them over explicitly::

        scheduler = AsyncGemmScheduler(
            fleet,
            weights=tenant_weights(specs),
            budgets=tenant_budgets(specs),
        )
    """

    name: str
    weight: float = 1.0
    load_share: float = 1.0
    budget_cycles: int | None = None
    slo: str = SLO_BEST_EFFORT

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be > 0")
        if self.load_share <= 0:
            raise ValueError(f"tenant {self.name!r}: load_share must be > 0")
        if self.slo not in SLO_CLASSES:
            raise ValueError(
                f"tenant {self.name!r}: slo must be one of {SLO_CLASSES}, "
                f"got {self.slo!r}"
            )


def equal_tenants(count: int, prefix: str = "tenant") -> tuple[TenantTrafficSpec, ...]:
    """``count`` tenants with identical weights and offered-load shares."""
    if count < 1:
        raise ValueError(f"tenant count must be >= 1, got {count}")
    return tuple(TenantTrafficSpec(f"{prefix}-{idx}") for idx in range(count))


def tenant_weights(tenants: Sequence[TenantTrafficSpec]) -> dict[str, float]:
    """Fair-share weights keyed by tenant, for ``AsyncGemmScheduler(weights=...)``."""
    return {spec.name: spec.weight for spec in tenants}


def tenant_budgets(tenants: Sequence[TenantTrafficSpec]) -> dict[str, int]:
    """Admission budgets keyed by tenant (budget-less tenants omitted, i.e.
    unmetered), for ``AsyncGemmScheduler(budgets=...)``."""
    return {
        spec.name: spec.budget_cycles
        for spec in tenants
        if spec.budget_cycles is not None
    }


def tenant_slo_classes(tenants: Sequence[TenantTrafficSpec]) -> dict[str, str]:
    """SLO classes keyed by tenant, for ``AsyncGemmScheduler(slo_classes=...)``.

    Best-effort tenants are omitted (it is the scheduler's default class),
    so the mapping only names the tenants shedding must protect.

    >>> specs = (TenantTrafficSpec("a", slo="latency-target"),
    ...          TenantTrafficSpec("b"))
    >>> tenant_slo_classes(specs)
    {'a': 'latency-target'}
    """
    return {
        spec.name: spec.slo for spec in tenants if spec.slo != SLO_BEST_EFFORT
    }


def scaled_workload(shape: GemmShape, max_dim: int) -> GemmShape:
    """Cap a workload's dimensions so functional serving stays cheap.

    Table 3 includes production shapes (e.g. the GPT-3 LM head's
    ``N = 50257``) that are impractical to execute functionally thousands
    of times in a trace; clamping each dimension preserves the mix's shape
    diversity — tall, wide and square problems remain distinct — while
    bounding per-job cost.
    """
    if max_dim < 1:
        raise ValueError(f"max_dim must be >= 1, got {max_dim}")
    return GemmShape(
        shape.name,
        m=min(shape.m, max_dim),
        k=min(shape.k, max_dim),
        n=min(shape.n, max_dim),
    )


def scaled_conv_workload(conv: ConvShape, max_dim: int) -> ConvShape:
    """Cap a conv layer so its lowered GEMM dimensions stay near ``max_dim``.

    The conv analogue of :func:`scaled_workload`: filters are clamped to
    ``max_dim`` (lowered ``M``), channels so that ``C*R*S <= max_dim``
    (lowered ``K``), and the IFMAP is shrunk so the layer produces at most
    ``~max_dim`` output pixels (lowered ``N``) — kernel, stride and padding
    are preserved, so the lowered shapes keep the network's geometric
    diversity while staying cheap to execute functionally thousands of
    times.
    """
    if max_dim < 1:
        raise ValueError(f"max_dim must be >= 1, got {max_dim}")
    window = conv.kernel_h * conv.kernel_w
    channels = min(conv.in_channels, max(1, max_dim // window))
    out_target = max(1, int(max_dim**0.5))
    # Smallest IFMAP whose output is out_target (capped by the original).
    def capped(in_size: int, kernel: int) -> int:
        current_out = conv_output_shape(in_size, kernel, conv.stride, conv.padding)
        target = min(current_out, out_target)
        return max(1, (target - 1) * conv.stride + kernel - 2 * conv.padding)

    return ConvShape(
        name=conv.name,
        in_channels=channels,
        ifmap_h=capped(conv.ifmap_h, conv.kernel_h),
        ifmap_w=capped(conv.ifmap_w, conv.kernel_w),
        kernel_h=conv.kernel_h,
        kernel_w=conv.kernel_w,
        num_filters=min(conv.num_filters, max_dim),
        stride=conv.stride,
        padding=conv.padding,
        depthwise=conv.depthwise,
    )


#: Default conv-layer pool for mixed traces: a geometrically diverse slice
#: of ResNet-50 (the 7x7/stride-2 stem, an early 3x3, a 1x1 expansion and a
#: deep stride-2 3x3), scaled per-trace by ``scaled_conv_workload``.
DEFAULT_CONV_WORKLOADS: tuple[ConvShape, ...] = (
    RESNET50_CONV_LAYERS[0],   # stem 7x7 s2
    RESNET50_CONV_LAYERS[2],   # conv2 block0 3x3
    RESNET50_CONV_LAYERS[3],   # conv2 block0 1x1 expand
    RESNET50_CONV_LAYERS[24],  # a deeper 3x3
)


def synthetic_trace(
    accelerator,
    tenants: Sequence[TenantTrafficSpec] | int = 4,
    *,
    jobs_per_tenant: int = 12,
    offered_load: float = 4.0,
    max_dim: int = 128,
    workloads: Sequence[GemmShape] = TABLE3_WORKLOADS,
    conv_fraction: float = 0.0,
    conv_workloads: Sequence[ConvShape] = DEFAULT_CONV_WORKLOADS,
    seed: int = 0,
    deadline_slack: float | None = None,
) -> list[Job | ConvJob]:
    """Build a deterministic mixed-workload trace for a serving run.

    Parameters
    ----------
    accelerator:
        Calibration target: the tile-exact cycles the pool's shapes occupy
        it for (:func:`repro.serve.scheduler.planned_gemm_cycles`) set the
        mean service time that ``offered_load`` is expressed against.  A
        *sequence* of accelerators calibrates against a (possibly
        heterogeneous) fleet instead: the mean service time averages over
        every worker, so ``offered_load`` keeps meaning multiples of one
        average worker's capacity.  Deadline hints, by contrast, are priced
        with the same analytical estimates admission uses
        (:meth:`estimate_gemm_cycles` — the best class on a fleet,
        matching :meth:`repro.serve.scheduler.AsyncGemmScheduler.price_job`).
    tenants:
        Tenant specs, or an integer for that many identical tenants.
    jobs_per_tenant:
        Jobs each tenant submits.
    offered_load:
        Aggregate arrival rate as a multiple of one worker's service rate:
        1.0 keeps a single accelerator exactly busy on average, 4.0
        saturates a fleet of four.
    max_dim:
        Dimension cap applied to every workload shape
        (:func:`scaled_workload` / :func:`scaled_conv_workload`).
    workloads:
        GEMM shape pool to sample uniformly per job (default: all of
        Table 3).
    conv_fraction:
        Probability in ``[0, 1]`` that a job is a convolution layer
        (:class:`repro.serve.job.ConvJob`) instead of a plain GEMM.  0
        (default) reproduces the pure-GEMM traces bit-for-bit.
    conv_workloads:
        Conv layer pool sampled for conv jobs (default: a diverse
        ResNet-50 slice), each scaled by :func:`scaled_conv_workload`.
    seed:
        Root seed; tenant substreams are spawned from it.
    deadline_slack:
        When set, each job carries ``deadline_hint_cycles = slack x`` its
        priced cycles (advisory; lets reports count deadline misses).
    """
    if isinstance(accelerator, (list, tuple)):
        calibration = list(accelerator)
        if not calibration:
            raise ValueError("calibration fleet must not be empty")
    else:
        calibration = [accelerator]
    if isinstance(tenants, int):
        tenants = equal_tenants(tenants)
    tenants = tuple(tenants)
    if not tenants:
        raise ValueError("trace needs at least one tenant")
    if jobs_per_tenant < 1:
        raise ValueError(f"jobs_per_tenant must be >= 1, got {jobs_per_tenant}")
    if offered_load <= 0:
        raise ValueError(f"offered_load must be > 0, got {offered_load}")
    if not 0.0 <= conv_fraction <= 1.0:
        raise ValueError(f"conv_fraction must be in [0, 1], got {conv_fraction}")

    pool = tuple(scaled_workload(shape, max_dim) for shape in workloads)
    if not pool:
        raise ValueError("workload pool is empty")
    conv_pool: tuple[ConvShape, ...] = ()
    if conv_fraction > 0:
        conv_pool = tuple(
            scaled_conv_workload(shape, max_dim) for shape in conv_workloads
        )
        if not conv_pool:
            raise ValueError("conv_fraction > 0 needs a non-empty conv pool")
    # Calibrate against the tile-exact cycles jobs will actually occupy a
    # worker for (the padded Eq. 2/3 estimates used for admission pricing
    # overprice ragged shapes, which would silently deflate the real load).
    # Fleet calibration averages the per-worker costs, so a heterogeneous
    # fleet is offered the load its *mean* worker sustains.
    def fleet_mean_cycles(m: int, k: int, n: int) -> float:
        return sum(
            planned_gemm_cycles(worker, m, k, n) for worker in calibration
        ) / len(calibration)

    mean_cost = sum(
        fleet_mean_cycles(shape.m, shape.k, shape.n) for shape in pool
    ) / len(pool)
    if conv_pool:
        lowered = tuple(lower_conv_to_gemm(shape) for shape in conv_pool)
        conv_mean = sum(
            fleet_mean_cycles(g.m, g.k, g.n) for g in lowered
        ) / len(lowered)
        mean_cost = (1.0 - conv_fraction) * mean_cost + conv_fraction * conv_mean

    # offered_load jobs-in-service on average across the whole trace;
    # apportion the aggregate rate by each tenant's load share.
    total_share = sum(spec.load_share for spec in tenants)
    aggregate_rate = offered_load / mean_cost  # jobs per cycle

    jobs: list[Job | ConvJob] = []
    streams = np.random.SeedSequence(seed).spawn(len(tenants))
    for spec, stream in zip(tenants, streams):
        rng = np.random.default_rng(stream)
        rate = aggregate_rate * spec.load_share / total_share
        arrival = 0.0
        for index in range(jobs_per_tenant):
            arrival += rng.exponential(1.0 / rate)
            is_conv = conv_pool and rng.random() < conv_fraction
            if is_conv:
                conv = conv_pool[int(rng.integers(len(conv_pool)))]
                gemm = lower_conv_to_gemm(conv)
            else:
                gemm = pool[int(rng.integers(len(pool)))]
            deadline = None
            if deadline_slack is not None:
                priced = min(
                    worker.estimate_gemm_cycles(gemm.m, gemm.k, gemm.n)
                    for worker in calibration
                )
                deadline = int(round(deadline_slack * priced))
            if is_conv:
                jobs.append(
                    ConvJob(
                        job_id=f"{spec.name}-{index:04d}",
                        tenant=spec.name,
                        ifmap=rng.standard_normal(
                            (conv.in_channels, conv.ifmap_h, conv.ifmap_w)
                        ),
                        filters=rng.standard_normal(
                            (
                                conv.num_filters,
                                conv.in_channels,
                                conv.kernel_h,
                                conv.kernel_w,
                            )
                        ),
                        stride=conv.stride,
                        padding=conv.padding,
                        name=conv.name,
                        deadline_hint_cycles=deadline,
                        arrival_cycle=int(round(arrival)),
                    )
                )
                continue
            jobs.append(
                Job(
                    job_id=f"{spec.name}-{index:04d}",
                    tenant=spec.name,
                    a=rng.standard_normal((gemm.m, gemm.k)),
                    b=rng.standard_normal((gemm.k, gemm.n)),
                    name=gemm.name,
                    deadline_hint_cycles=deadline,
                    arrival_cycle=int(round(arrival)),
                )
            )
    jobs.sort(key=lambda job: (job.arrival_cycle, job.job_id))
    return jobs

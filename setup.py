"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that editable installs (``pip install -e .``) work on environments whose
setuptools predates PEP 660 wheel-less editable support.
"""

from setuptools import setup

setup()

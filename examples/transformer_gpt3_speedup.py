#!/usr/bin/env python3
"""Transformer (GPT-3 / GNMT / TF) GEMM speedups across array sizes.

Reproduces the Fig. 12 experiment for the transformer-derived workloads of
Table 3: the Axon-vs-SA runtime for every workload on 64x64, 128x128 and
256x256 arrays, the per-size average speedup, and a per-dataflow breakdown
for one workload to show that the improvement holds for OS, WS and IS alike.

Run with:  python examples/transformer_gpt3_speedup.py
"""

from __future__ import annotations

from repro.analysis import arithmetic_mean, format_speedup_table, workload_speedups
from repro.arch.dataflow import Dataflow
from repro.core.runtime_model import workload_runtime
from repro.workloads import TABLE3_GEMM_WORKLOADS, workload_by_name


def main() -> None:
    transformer_workloads = [
        workload
        for workload in TABLE3_GEMM_WORKLOADS
        if workload.name.startswith(("TF", "GNMT", "GPT3"))
    ]

    for size in (64, 128, 256):
        results = workload_speedups(transformer_workloads, size, size)
        print(f"\nTransformer GEMMs on a {size}x{size} array")
        print(format_speedup_table(results))
        print(f"  average speedup: "
              f"{arithmetic_mean([r.speedup for r in results]):.2f}x")

    # Per-dataflow breakdown for one representative workload.
    workload = workload_by_name("GNMT1")
    print(f"\nPer-dataflow runtime for {workload.name} "
          f"(M={workload.m}, K={workload.k}, N={workload.n}) on 128x128")
    for dataflow in Dataflow:
        sa = workload_runtime(workload.m, workload.k, workload.n, 128, 128, dataflow, axon=False)
        axon = workload_runtime(workload.m, workload.k, workload.n, 128, 128, dataflow, axon=True)
        print(f"  {dataflow.value}: SA {sa:9,} cycles   Axon {axon:9,} cycles   "
              f"speedup {sa / axon:.2f}x")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Serve a mixed GEMM + convolution trace on the batch-serving subsystem.

Builds a synthetic four-tenant trace in which ~40% of the jobs are CNN
convolution layers (:class:`repro.serve.ConvJob` — im2col-lowered at
construction, priced and batched by their lowered GEMM shape) and the rest
are Table 3 GEMMs, then replays it two ways:

* naive serial dispatch — one worker, no batching, arrival order;
* the batched async scheduler — a 4-worker Axon fleet with weighted-fair
  queues and same-shape stacked batching.

Every completed conv job's OFMAP is verified bit-exact against a direct
``run_conv`` call, and the throughput of both dispatch strategies is
compared.

Run with:  python examples/serve_conv_trace.py
"""

from __future__ import annotations

import numpy as np

from repro import ArrayConfig, AxonAccelerator
from repro.serve import AsyncGemmScheduler, ConvJob, serial_baseline
from repro.workloads import synthetic_trace

ARRAY = ArrayConfig(32, 32)
WORKERS = 4
TENANTS = 4
JOBS_PER_TENANT = 10
CONV_FRACTION = 0.4


def main() -> None:
    fleet = [AxonAccelerator(ARRAY) for _ in range(WORKERS)]
    jobs = synthetic_trace(
        fleet[0],
        tenants=TENANTS,
        jobs_per_tenant=JOBS_PER_TENANT,
        offered_load=2.0 * WORKERS,
        max_dim=128,
        conv_fraction=CONV_FRACTION,
        seed=11,
    )
    conv_jobs = [job for job in jobs if isinstance(job, ConvJob)]
    print(f"trace: {len(jobs)} jobs from {TENANTS} tenants "
          f"({len(conv_jobs)} conv layers, {len(jobs) - len(conv_jobs)} GEMMs)")

    serial_report, _ = serial_baseline(AxonAccelerator(ARRAY), jobs)
    report, results = AsyncGemmScheduler(fleet, max_batch=8).serve(jobs)

    # Every conv job's folded OFMAP is bit-exact vs a direct run_conv call.
    reference = AxonAccelerator(ARRAY)
    by_id = {job.job_id: job for job in conv_jobs}
    checked = 0
    for result in results:
        job = by_id.get(result.job_id)
        if job is None:
            continue
        direct = reference.run_conv(
            job.ifmap, job.filters, stride=job.stride, padding=job.padding
        )
        assert np.array_equal(result.result.output, direct.output), result.job_id
        assert result.result.dram_bytes == direct.dram_bytes
        checked += 1
    print(f"verified {checked} conv OFMAPs bit-exact vs direct run_conv\n")

    ratio = report.jobs_per_second / serial_report.jobs_per_second
    print(f"serial (1 worker)           : "
          f"{serial_report.makespan_cycles:>9,} cycles makespan, "
          f"{serial_report.jobs_per_second:>12,.0f} jobs/s")
    print(f"batched async ({WORKERS} workers)   : "
          f"{report.makespan_cycles:>9,} cycles makespan, "
          f"{report.jobs_per_second:>12,.0f} jobs/s  ({ratio:.2f}x)")
    print(f"jobs sharing a batch        : {report.batched_jobs}")
    print(f"estimate-cache hit rate     : {report.cache_hit_rate:.1%}")

    print("\nper-tenant p95 latency (cycles):")
    for tenant in report.tenants:
        p95 = "-" if tenant.latency is None else f"{int(tenant.latency.p95):,}"
        print(f"  {tenant.tenant:10s} completed {tenant.completed:2d}   p95 {p95}")


if __name__ == "__main__":
    main()

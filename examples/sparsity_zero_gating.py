#!/usr/bin/env python3
"""Sparse GEMM with zero gating — power reduction vs operand sparsity.

Generates sparse operands at several sparsity levels, runs them on the
cycle-accurate Axon array with zero gating enabled (results are unchanged,
gated MACs are counted), and converts the gated-MAC fraction into the total
power reduction the paper reports (5.3% at 10% sparsity, Sec. 5.2.1).

Run with:  python examples/sparsity_zero_gating.py
"""

from __future__ import annotations

import numpy as np

from repro.arch.array_config import ArrayConfig
from repro.core.axon_os import AxonOSArray
from repro.core.zero_gating import gated_power_fraction, zero_gating_stats
from repro.energy import ASAP7, conventional_array_power_mw
from repro.workloads.sparse import sparse_gemm_pair


def main() -> None:
    config = ArrayConfig(rows=16, cols=16)
    simulator = AxonOSArray(config, zero_gating=True)
    base_power = conventional_array_power_mw(config, ASAP7)

    print("Zero-gating power reduction on a 16x16 Axon array (ASAP7, 59.88 mW dense)")
    print(f"{'sparsity':>10} {'gated MACs':>12} {'power reduction':>16} {'array power':>12}")
    for sparsity in (0.0, 0.05, 0.10, 0.20, 0.30, 0.50):
        a, b = sparse_gemm_pair(16, 64, 16, sparsity, seed=3)
        result = simulator.run_tile(a, b)
        dense = AxonOSArray(config, zero_gating=False).run_tile(a, b)
        assert np.allclose(result.output, dense.output), "gating changed the result"

        stats = zero_gating_stats(a, b)
        assert stats.gated_macs == result.gated_macs, "simulator disagrees with analysis"

        gated_fraction = result.gated_macs / stats.total_macs
        reduction = gated_power_fraction(gated_fraction)
        print(f"{sparsity:>10.0%} {result.gated_macs:>12d} {reduction:>16.1%} "
              f"{base_power * (1 - reduction):>10.2f} mW")

    print("\nPaper calibration point: 10% sparsity -> 5.3% total power reduction.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart — run a GEMM on the Axon and conventional accelerators.

This example exercises the two public accelerator façades on the same small
matrix multiplication, checks the results against numpy, and prints the cycle
counts and utilisation of each orchestration, plus the analytical runtime of
a Table 3-sized workload that is too large to simulate functionally.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ArrayConfig, AxonAccelerator, SystolicAccelerator
from repro.workloads import workload_by_name


def main() -> None:
    rng = np.random.default_rng(42)

    # A 16x16 array, the same configuration the paper prototypes (Fig. 10).
    config = ArrayConfig(rows=16, cols=16)
    axon = AxonAccelerator(config)
    systolic = SystolicAccelerator(config)

    # --- functional execution on the cycle-accurate simulators -------------
    a = rng.standard_normal((48, 20))
    b = rng.standard_normal((20, 32))
    axon_run = axon.run_gemm(a, b, name="demo_gemm")
    systolic_run = systolic.run_gemm(a, b, name="demo_gemm")

    assert np.allclose(axon_run.output, a @ b)
    assert np.allclose(systolic_run.output, a @ b)

    print("Functional GEMM (48x20) x (20x32) on a 16x16 array")
    print(f"  conventional SA : {systolic_run.cycles:6d} cycles, "
          f"utilisation {systolic_run.utilization:.1%}")
    print(f"  Axon            : {axon_run.cycles:6d} cycles, "
          f"utilisation {axon_run.utilization:.1%}")
    print(f"  speedup         : {systolic_run.cycles / axon_run.cycles:.2f}x")

    # --- analytical estimate for a real workload ---------------------------
    workload = workload_by_name("GNMT1")
    big_config = ArrayConfig(rows=128, cols=128)
    axon_big = AxonAccelerator(big_config).estimate_gemm(
        workload.name, workload.m, workload.k, workload.n
    )
    systolic_big = SystolicAccelerator(big_config).estimate_gemm(
        workload.name, workload.m, workload.k, workload.n
    )
    print(f"\nTable 3 workload {workload.name} "
          f"(M={workload.m}, K={workload.k}, N={workload.n}) on a 128x128 array")
    print(f"  conventional SA : {systolic_big.cycles:10d} cycles")
    print(f"  Axon            : {axon_big.cycles:10d} cycles")
    print(f"  speedup         : {systolic_big.cycles / axon_big.cycles:.2f}x")


if __name__ == "__main__":
    main()

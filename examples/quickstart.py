#!/usr/bin/env python3
"""Quickstart — run a GEMM and a conv layer on both accelerators.

This example exercises the two public accelerator façades on the same small
matrix multiplication and the same convolution layer, checks the results
against the numpy / golden references, and prints the cycle counts and
utilisation of each orchestration, plus the analytical runtime of a
Table 3-sized workload that is too large to execute functionally.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ArrayConfig, AxonAccelerator, SystolicAccelerator
from repro.golden.conv import conv2d
from repro.workloads import workload_by_name


def main() -> None:
    rng = np.random.default_rng(42)

    # A 16x16 array, the same configuration the paper prototypes (Fig. 10).
    config = ArrayConfig(rows=16, cols=16)
    axon = AxonAccelerator(config)
    systolic = SystolicAccelerator(config)

    # --- functional GEMM on the vectorized wavefront engine ----------------
    # (the default engine; pass engine="cycle" for the cycle-accurate
    # simulators or engine="wavefront-exact" for bit-identical outputs)
    a = rng.standard_normal((48, 20))
    b = rng.standard_normal((20, 32))
    axon_run = axon.run_gemm(a, b, name="demo_gemm")
    systolic_run = systolic.run_gemm(a, b, name="demo_gemm")

    assert np.allclose(axon_run.output, a @ b)
    assert np.allclose(systolic_run.output, a @ b)

    print("Functional GEMM (48x20) x (20x32) on a 16x16 array")
    print(f"  conventional SA : {systolic_run.cycles:6d} cycles, "
          f"utilisation {systolic_run.utilization:.1%}")
    print(f"  Axon            : {axon_run.cycles:6d} cycles, "
          f"utilisation {axon_run.utilization:.1%}")
    print(f"  speedup         : {systolic_run.cycles / axon_run.cycles:.2f}x")

    # --- functional convolution via im2col lowering ------------------------
    # run_conv lowers the layer onto the same engine and folds the GEMM
    # result back into the OFMAP; the DRAM traffic field reflects each
    # design's im2col scheme (software vs on-chip).
    ifmap = rng.standard_normal((8, 14, 14))         # (C, H, W)
    filters = rng.standard_normal((16, 8, 3, 3))     # (F, C, R, S)
    axon_conv = axon.run_conv(ifmap, filters, padding=1, name="demo_conv")
    systolic_conv = systolic.run_conv(ifmap, filters, padding=1, name="demo_conv")

    golden = conv2d(ifmap, filters, padding=1)
    assert np.allclose(axon_conv.output, golden)
    assert np.allclose(systolic_conv.output, golden)

    print("\nFunctional conv 8x14x14 * 16x8x3x3 (pad 1) on a 16x16 array")
    print(f"  conventional SA : {systolic_conv.cycles:6d} cycles, "
          f"im2col traffic {systolic_conv.dram_bytes / 1e3:6.1f} KB")
    print(f"  Axon            : {axon_conv.cycles:6d} cycles, "
          f"im2col traffic {axon_conv.dram_bytes / 1e3:6.1f} KB")
    print(f"  OFMAP           : {axon_conv.output.shape}, golden-exact")

    # --- analytical estimate for a real workload ---------------------------
    workload = workload_by_name("GNMT1")
    big_config = ArrayConfig(rows=128, cols=128)
    axon_big = AxonAccelerator(big_config).estimate_gemm(
        workload.name, workload.m, workload.k, workload.n
    )
    systolic_big = SystolicAccelerator(big_config).estimate_gemm(
        workload.name, workload.m, workload.k, workload.n
    )
    print(f"\nTable 3 workload {workload.name} "
          f"(M={workload.m}, K={workload.k}, N={workload.n}) on a 128x128 array")
    print(f"  conventional SA : {systolic_big.cycles:10d} cycles")
    print(f"  Axon            : {axon_big.cycles:10d} cycles")
    print(f"  speedup         : {systolic_big.cycles / axon_big.cycles:.2f}x")


if __name__ == "__main__":
    main()

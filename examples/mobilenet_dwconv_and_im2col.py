#!/usr/bin/env python3
"""MobileNet depthwise convolution + on-chip im2col walkthrough.

Part 1 reproduces the Fig. 14 observation that low arithmetic-intensity
workloads (depthwise convolutions, whose lowered temporal dimension is only
R*S = 9) benefit the most from the Axon orchestration.

Part 2 runs the actual on-chip im2col feeder on a small convolution layer: it
feeds the convolution windows through the diagonal MUXes, verifies that the
delivered operand stream is exactly the software-im2col matrix, executes the
lowered GEMM on the Axon array, and compares against the golden convolution.

Run with:  python examples/mobilenet_dwconv_and_im2col.py
"""

from __future__ import annotations

import numpy as np

from repro import ArrayConfig, AxonAccelerator, SystolicAccelerator
from repro.analysis import arithmetic_mean, workload_speedups
from repro.core.im2col_unit import Im2colFeeder
from repro.golden import conv2d
from repro.workloads import DEPTHWISE_WORKLOADS, mobilenet_depthwise_layers


def depthwise_speedups() -> None:
    print("MobileNet / EfficientNet depthwise-conv speedups on a 128x128 array")
    results = workload_speedups(DEPTHWISE_WORKLOADS, 128, 128)
    for result in results[:8]:
        print(f"  {result.workload:35s} speedup {result.speedup:.2f}x")
    print(f"  ... ({len(results)} layers total), "
          f"average {arithmetic_mean([r.speedup for r in results]):.2f}x")
    layers = mobilenet_depthwise_layers()
    total_macs = sum(layer.macs for layer in layers)
    print(f"  total depthwise MACs: {total_macs / 1e6:.1f} M")


def onchip_im2col_demo() -> None:
    rng = np.random.default_rng(0)
    channels, size, kernel, filters = 4, 10, 3, 8
    ifmap = rng.standard_normal((channels, size, size))
    weights = rng.standard_normal((filters, channels, kernel, kernel))
    golden = conv2d(ifmap, weights)

    feeder = Im2colFeeder(kernel, kernel)
    out_w = size - kernel + 1
    config = ArrayConfig(rows=16, cols=16)
    axon = AxonAccelerator(config)
    systolic = SystolicAccelerator(config)

    total_sram_reads = 0
    total_elements = 0
    output = np.zeros_like(golden)
    flat_weights = weights.reshape(filters, -1)
    for ofmap_row in range(size - kernel + 1):
        trace = feeder.feed_ofmap_row(ifmap, ofmap_row)
        total_sram_reads += trace.sram_reads
        total_elements += trace.total_elements
        # The delivered windows, re-ordered, are the im2col rows for this
        # OFMAP row; run the lowered GEMM on the cycle-accurate Axon array.
        windows = trace.windows_in_natural_order(kernel)  # (out_w, C*R*S)
        run = axon.run_gemm(flat_weights, windows.T, name=f"row{ofmap_row}")
        output[:, ofmap_row, :] = run.output

    assert np.allclose(output, golden), "on-chip im2col convolution mismatch"
    reuse = 1.0 - total_sram_reads / total_elements

    software_reads = total_elements  # software im2col streams every element
    print("\nOn-chip im2col demo (4x10x10 IFMAP, 3x3 kernel, 8 filters)")
    print(f"  convolution result matches the golden model: True")
    print(f"  operand elements delivered to the array : {total_elements}")
    print(f"  SRAM reads with the 2-to-1 MUX feeder    : {total_sram_reads} "
          f"({reuse:.0%} served from the adjacent feeder PE)")
    print(f"  SRAM reads with software im2col          : {software_reads}")

    # Cycle comparison of the lowered GEMM for one OFMAP row.
    trace = feeder.feed_ofmap_row(ifmap, 0)
    windows = trace.windows_in_natural_order(kernel)
    axon_run = axon.run_gemm(flat_weights, windows.T)
    systolic_run = systolic.run_gemm(flat_weights, windows.T)
    print(f"  per-row lowered GEMM cycles: SA {systolic_run.cycles}, Axon {axon_run.cycles} "
          f"({systolic_run.cycles / axon_run.cycles:.2f}x)")


def main() -> None:
    depthwise_speedups()
    onchip_im2col_demo()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""ResNet50 / YOLOv3 convolution inference: runtime, DRAM traffic and energy.

Walks every convolution layer of ResNet50 and YOLOv3 through the Axon and
conventional accelerators, comparing:

* total conv runtime (scale-up on a 128x128 array),
* conv-layer DRAM traffic with software im2col vs Axon's on-chip im2col,
* the DRAM energy saved per inference at LPDDR3's 120 pJ/byte (Sec. 5.2.1),

then *executes* one ResNet50-shaped layer functionally with ``run_conv``
(real tensors through the im2col-lowered wavefront engine, checked against
the golden direct convolution) to show the estimates and the functional
path agree.

Run with:  python examples/resnet50_conv_traffic.py
"""

from __future__ import annotations

import numpy as np

from repro import ArrayConfig, AxonAccelerator, SystolicAccelerator
from repro.energy import inference_energy_report, memory_bound_speedup
from repro.golden.conv import conv2d
from repro.im2col.traffic import network_traffic
from repro.workloads import (
    RESNET50_CONV_LAYERS,
    YOLOV3_CONV_LAYERS,
    scaled_conv_workload,
)


def analyse_network(name: str, layers) -> None:
    config = ArrayConfig(rows=128, cols=128)
    axon = AxonAccelerator(config)
    systolic = SystolicAccelerator(config)

    axon_total = axon.estimate_network(layers, name=name)
    systolic_total = systolic.estimate_network(layers, name=name)

    software = network_traffic(layers, onchip=False, name=name)
    onchip = network_traffic(layers, onchip=True, name=name)
    energy = inference_energy_report(name, software, onchip)
    speedup = memory_bound_speedup(axon_total.cycles, software.total_bytes, onchip.total_bytes)

    print(f"\n{name} ({len(layers)} conv layers) on a 128x128 array")
    print(f"  compute cycles      : SA {systolic_total.cycles:,}  vs  Axon {axon_total.cycles:,} "
          f"({systolic_total.cycles / axon_total.cycles:.2f}x)")
    print(f"  DRAM traffic        : software im2col {energy.software_mb:8.1f} MB  ->  "
          f"on-chip im2col {energy.onchip_mb:8.1f} MB ({energy.traffic_ratio:.2f}x less)")
    print(f"  DRAM energy saving  : {energy.energy_saving_mj:6.1f} mJ per inference")
    print(f"  memory-bound speedup: {speedup:.2f}x at 6.4 GB/s LPDDR3")

    # The five layers with the largest individual traffic saving.
    per_layer = []
    for layer in layers:
        sa = systolic.estimate_conv(layer)
        ax = axon.estimate_conv(layer)
        per_layer.append((layer.name, (sa.dram_bytes - ax.dram_bytes) / 1e6))
    per_layer.sort(key=lambda item: item[1], reverse=True)
    print("  top traffic-saving layers:")
    for layer_name, saved_mb in per_layer[:5]:
        print(f"    {layer_name:35s} {saved_mb:8.2f} MB saved")


def run_stem_functionally() -> None:
    """Execute a (scaled) ResNet50 stem layer with real data via run_conv."""
    rng = np.random.default_rng(7)
    # The 7x7/stride-2 stem, IFMAP scaled down so the example stays instant;
    # kernel, stride and padding are preserved.
    layer = scaled_conv_workload(RESNET50_CONV_LAYERS[0], max_dim=256)
    ifmap = rng.standard_normal((layer.in_channels, layer.ifmap_h, layer.ifmap_w))
    filters = rng.standard_normal(
        (layer.num_filters, layer.in_channels, layer.kernel_h, layer.kernel_w)
    )

    config = ArrayConfig(rows=32, cols=32)
    axon = AxonAccelerator(config)
    run = axon.run_conv(
        ifmap, filters, stride=layer.stride, padding=layer.padding, name=layer.name
    )
    estimate = axon.estimate_conv(layer)
    golden = conv2d(ifmap, filters, stride=layer.stride, padding=layer.padding)
    assert np.allclose(run.output, golden)

    print(f"\nFunctional run of {layer.name} "
          f"({layer.in_channels}x{layer.ifmap_h}x{layer.ifmap_w}, "
          f"{layer.kernel_h}x{layer.kernel_w}/s{layer.stride}) on a 32x32 array")
    print(f"  OFMAP               : {run.output.shape}, matches golden conv2d")
    print(f"  measured cycles     : {run.cycles:,} "
          f"(estimate_conv: {estimate.cycles:,})")
    print(f"  measured utilisation: {run.utilization:.1%}")
    print(f"  on-chip im2col DRAM : {run.dram_bytes / 1e6:.2f} MB "
          f"(same model as the estimate: {estimate.dram_bytes / 1e6:.2f} MB)")


def main() -> None:
    analyse_network("ResNet50", RESNET50_CONV_LAYERS)
    analyse_network("YOLOv3", YOLOV3_CONV_LAYERS)
    run_stem_functionally()


if __name__ == "__main__":
    main()
